"""Tests for the batched multi-query solver.

The load-bearing property is the acceptance criterion of the engine PR:
batched sweep results must be *bitwise-equal* to independent
``timed_reachability`` calls at the same epsilon -- batching may only
change the cost of an analysis, never its outcome.
"""

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.ctmc import reachability as ctmc_reachability
from repro.engine import (
    ModelRegistry,
    Query,
    QueryEngine,
    run_batch,
    run_batch_dicts,
)
from repro.models import ftwc_direct

SPEC1 = {"family": "ftwc", "n": 1}
SPEC2 = {"family": "ftwc", "n": 2}
TIME_SWEEP = (0.0, 10.0, 50.0, 100.0, 250.0, 500.0)


class TestBitwiseEquality:
    def test_batched_sweep_equals_independent_calls(self):
        batch = run_batch([Query(model=SPEC2, t=t) for t in TIME_SWEEP])
        model = ftwc_direct.build_ctmdp(2)
        for t, result in zip(TIME_SWEEP, batch.results):
            reference = timed_reachability(
                model.ctmdp, model.goal_mask, t, epsilon=1e-6
            ).value(model.ctmdp.initial)
            assert result.value == reference  # bitwise, not approx
            assert result.error is None

    def test_min_objective_matches(self):
        batch = run_batch(
            [Query(model=SPEC2, t=t, objective="min") for t in (50.0, 100.0)]
        )
        model = ftwc_direct.build_ctmdp(2)
        for t, result in zip((50.0, 100.0), batch.results):
            reference = timed_reachability(
                model.ctmdp, model.goal_mask, t, epsilon=1e-6, objective="min"
            ).value(model.ctmdp.initial)
            assert result.value == reference

    def test_ctmc_queries_match_ctmc_solver(self):
        spec = {"family": "ftwc-ctmc", "n": 1}
        batch = run_batch([Query(model=spec, t=t, epsilon=1e-8) for t in (10.0, 100.0)])
        chain, _configs, goal = ftwc_direct.build_ctmc(1)
        for t, result in zip((10.0, 100.0), batch.results):
            reference = ctmc_reachability.timed_reachability(chain, goal, t, epsilon=1e-8)
            assert result.value == float(reference[chain.initial])

    def test_mixed_epsilons_keep_their_precision(self):
        batch = run_batch(
            [
                Query(model=SPEC1, t=100.0, epsilon=1e-3),
                Query(model=SPEC1, t=100.0, epsilon=1e-9),
            ]
        )
        model = ftwc_direct.build_ctmdp(1)
        for epsilon, result in zip((1e-3, 1e-9), batch.results):
            reference = timed_reachability(
                model.ctmdp, model.goal_mask, 100.0, epsilon=epsilon
            )
            assert result.value == reference.value(model.ctmdp.initial)
            assert result.iterations == reference.iterations


class TestBatchBehaviour:
    def test_results_in_input_order_with_shared_model(self):
        shuffled = (100.0, 10.0, 50.0)
        batch = run_batch([Query(model=SPEC1, t=t) for t in shuffled])
        assert [r.index for r in batch.results] == [0, 1, 2]
        assert [r.query.t for r in batch.results] == list(shuffled)
        # One model build serves the whole sweep.
        assert batch.metrics.counter("models_built") == 1

    def test_goal_error_is_captured_not_fatal(self):
        batch = run_batch(
            [
                Query(model=SPEC1, t=10.0, goal="does_not_exist"),
                Query(model=SPEC1, t=10.0),
            ]
        )
        failed, succeeded = batch.results
        assert failed.error is not None and "does_not_exist" in failed.error
        assert failed.value is None
        assert succeeded.error is None and succeeded.value is not None
        assert batch.num_failed == 1
        assert batch.metrics.counter("queries_failed") == 1

    def test_invalid_dicts_become_error_records(self):
        batch = run_batch_dicts(
            [
                {"t": 10.0},
                {"model": SPEC1, "t": 10.0, "typo_field": 1},
                {"model": SPEC1, "t": 10.0},
            ]
        )
        assert [r.ok for r in batch.results] == [False, False, True]
        assert "model" in batch.results[0].error
        assert "typo_field" in batch.results[1].error

    def test_dict_defaults_apply(self):
        batch = run_batch_dicts(
            [{"t": 10.0}, {"t": 20.0}], defaults={"model": SPEC1}
        )
        assert all(r.ok for r in batch.results)
        assert batch.metrics.counter("queries_total") == 2

    def test_metrics_surface_on_batch(self):
        registry = ModelRegistry()
        batch = run_batch([Query(model=SPEC1, t=10.0)], registry=registry)
        document = batch.as_dict()
        assert document["metrics"]["counters"]["foxglynn"] == 1
        assert document["metrics"]["counters"]["iterations"] > 0
        (record,) = document["results"]
        assert record["cache"] == "build"
        assert record["seconds"] > 0.0
        assert record["model_key"] == batch.results[0].query.model_key()

    def test_per_query_timeout(self):
        batch = run_batch(
            [
                Query(model=SPEC2, t=30000.0),  # ~62k iterations: way over budget
                Query(model=SPEC2, t=1.0),
            ],
            timeout=0.05,
        )
        long, short = batch.results
        assert long.error is not None and "timed out" in long.error
        assert short.ok  # the batch survived the timeout


class TestProcessPool:
    def test_pool_matches_serial_bitwise(self, tmp_path):
        queries = [
            Query(model=SPEC1, t=50.0),
            Query(model=SPEC2, t=50.0),
            Query(model={"family": "ftwc-ctmc", "n": 1}, t=50.0),
        ]
        pooled = run_batch(
            queries, registry=ModelRegistry(cache_dir=tmp_path), workers=2
        )
        serial = run_batch(queries)
        assert all(r.ok for r in pooled.results)
        assert [r.value for r in pooled.results] == [r.value for r in serial.results]
        # Worker metrics were merged into the parent's collector.
        assert pooled.metrics.counter("models_built") == 3
        assert pooled.metrics.counter("queries_total") == 3

    def test_pool_workers_share_disk_cache(self, tmp_path):
        queries = [Query(model=SPEC1, t=10.0), Query(model=SPEC2, t=10.0)]
        run_batch(queries, registry=ModelRegistry(cache_dir=tmp_path), workers=2)
        warm = run_batch(
            queries, registry=ModelRegistry(cache_dir=tmp_path), workers=2
        )
        assert warm.metrics.counter("cache_hits_disk") == 2
        assert warm.metrics.counter("models_built") == 0

    def test_pool_results_carry_certificates_and_merge_metrics(self, tmp_path):
        queries = [Query(model=SPEC1, t=10.0), Query(model=SPEC2, t=10.0)]
        batch = run_batch(
            queries, registry=ModelRegistry(cache_dir=tmp_path), workers=2
        )
        assert all(r.certificate is not None for r in batch.results)
        assert all(r.certificate.healthy for r in batch.results)
        # Worker-side certificate metrics arrive through the merge.
        assert batch.metrics.counter("certificates_total") == 2
        snapshot = batch.metrics.as_dict()
        assert snapshot["histograms"]["certificate_error_bound"]["sum"] > 0.0

    def test_pool_worker_spans_adopt_into_parent_trace(self, tmp_path):
        from repro.obs import tracing

        queries = [Query(model=SPEC1, t=10.0), Query(model=SPEC2, t=10.0)]
        with tracing() as tracer:
            batch = run_batch(
                queries, registry=ModelRegistry(cache_dir=tmp_path), workers=2
            )
        assert all(r.ok for r in batch.results)
        worker_spans = [s for s in tracer.spans if "worker_pid" in s.attributes]
        assert {s.name for s in worker_spans} >= {
            "solver.prepare", "solver.solve", "reachability.sweep",
        }
        # Stable ids: worker span ids embed the shared trace id and the
        # worker's pid, so merged JSONL exports stay unambiguous.
        records = [r for r in tracer.as_dicts() if "worker_pid" in r["attributes"]]
        for record in records:
            assert record["trace_id"] == tracer.trace_id
            assert record["span_id"].startswith(f"{tracer.trace_id}:")
            assert f"{record['attributes']['worker_pid']:x}" in record["span_id"]
        # Parent-child links survive the index remapping.
        by_id = {r["span_id"]: r for r in tracer.as_dicts()}
        for record in records:
            if record["parent_span_id"] is not None:
                assert record["parent_span_id"] in by_id

    def test_pool_without_tracing_ships_no_spans(self, tmp_path):
        queries = [Query(model=SPEC1, t=10.0), Query(model=SPEC2, t=10.0)]
        batch = run_batch(
            queries, registry=ModelRegistry(cache_dir=tmp_path), workers=2
        )
        assert all(r.ok for r in batch.results)


class TestQueryEngine:
    def test_engine_reuses_registry_across_batches(self):
        engine = QueryEngine()
        engine.run([Query(model=SPEC1, t=10.0)])
        engine.run([Query(model=SPEC1, t=20.0)])
        assert engine.metrics.counter("models_built") == 1
        assert engine.metrics.counter("cache_hits_memory") == 1

    def test_engine_model_lookup(self):
        engine = QueryEngine()
        built = engine.model(SPEC1)
        assert built.kind == "ctmdp"
        assert engine.model(SPEC1) is built
