"""Tests for CTMC expected hitting times."""

import numpy as np
import pytest

from repro.ctmc.hitting import expected_hitting_time
from repro.ctmc.model import CTMC
from repro.ctmc.uniformization import uniformize
from repro.errors import ModelError


class TestAnalytic:
    def test_single_step(self):
        chain = CTMC.from_transitions(2, [(0, 1, 4.0)])
        times = expected_hitting_time(chain, [1])
        np.testing.assert_allclose(times, [0.25, 0.0])

    def test_erlang_chain(self):
        chain = CTMC.from_transitions(3, [(0, 1, 2.0), (1, 2, 2.0)])
        times = expected_hitting_time(chain, [2])
        np.testing.assert_allclose(times, [1.0, 0.5, 0.0])

    def test_birth_death_cycle(self):
        # 0 <-> 1 -> 2: from 0, h0 = 1/2 + h1; h1 = 1/(1+3) + (3/4) h0
        # + (1/4)*0 with rates 1->0 at 3, 1->2 at 1.
        chain = CTMC.from_transitions(
            3, [(0, 1, 2.0), (1, 0, 3.0), (1, 2, 1.0)]
        )
        times = expected_hitting_time(chain, [2])
        h1 = times[1]
        h0 = times[0]
        assert h0 == pytest.approx(0.5 + h1)
        assert h1 == pytest.approx(0.25 + 0.75 * h0)

    def test_self_loops_do_not_matter(self):
        plain = CTMC.from_transitions(2, [(0, 1, 4.0)])
        looped = uniformize(plain, rate=100.0)
        np.testing.assert_allclose(
            expected_hitting_time(looped, [1]),
            expected_hitting_time(plain, [1]),
            atol=1e-10,
        )


class TestInfinite:
    def test_unreachable(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 0, 1.0)])
        times = expected_hitting_time(chain, [2])
        assert np.isinf(times[0]) and np.isinf(times[1])
        assert times[2] == 0.0

    def test_possible_absorption_elsewhere(self):
        # 0 can fall into absorbing trap 2 before reaching 1.
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (0, 2, 1.0)])
        times = expected_hitting_time(chain, [1])
        assert np.isinf(times[0])

    def test_empty_goal(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        assert np.isinf(expected_hitting_time(chain, [])).all()

    def test_bad_mask_shape(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ModelError):
            expected_hitting_time(chain, np.array([True]))


class TestConsistency:
    def test_matches_ctmdp_solver_on_induced_chain(self):
        from repro.core.expected_time import expected_reachability_time
        from repro.models.ftwc_direct import build_ctmdp

        model = build_ctmdp(1)
        # Fix a stationary scheduler (first choice everywhere) and
        # compare the chain solver against the MDP solver's bracketing.
        chain = model.ctmdp.induced_ctmc(np.zeros(model.ctmdp.num_states, dtype=int))
        chain_time = expected_hitting_time(chain, model.goal_mask)[model.ctmdp.initial]
        best = expected_reachability_time(model.ctmdp, model.goal_mask, "min")
        worst = expected_reachability_time(model.ctmdp, model.goal_mask, "max")
        assert best[model.ctmdp.initial] - 1e-6 <= chain_time
        assert chain_time <= worst[model.ctmdp.initial] + 1e-6
