"""Tests for phase-type distributions."""

import math

import numpy as np
import pytest
import scipy.stats

from repro.ctmc.phase_type import PhaseType
from repro.errors import ModelError


class TestExponential:
    def test_cdf_matches_closed_form(self):
        ph = PhaseType.exponential(2.0)
        for x in (0.0, 0.3, 1.0, 4.0):
            assert ph.cdf(x) == pytest.approx(1.0 - math.exp(-2.0 * x), abs=1e-12)

    def test_pdf_matches_closed_form(self):
        ph = PhaseType.exponential(2.0)
        for x in (0.1, 1.0):
            assert ph.pdf(x) == pytest.approx(2.0 * math.exp(-2.0 * x), abs=1e-12)

    def test_moments(self):
        ph = PhaseType.exponential(4.0)
        assert ph.mean() == pytest.approx(0.25)
        assert ph.variance() == pytest.approx(0.0625)

    def test_negative_argument(self):
        ph = PhaseType.exponential(1.0)
        assert ph.cdf(-1.0) == 0.0
        assert ph.pdf(-1.0) == 0.0

    def test_invalid_rate_rejected(self):
        with pytest.raises(ModelError):
            PhaseType.exponential(0.0)


class TestErlang:
    def test_cdf_matches_gamma(self):
        ph = PhaseType.erlang(3, 2.0)
        gamma = scipy.stats.gamma(a=3, scale=0.5)
        for x in (0.2, 1.0, 2.5):
            assert ph.cdf(x) == pytest.approx(float(gamma.cdf(x)), abs=1e-10)

    def test_moments(self):
        ph = PhaseType.erlang(4, 2.0)
        assert ph.mean() == pytest.approx(2.0)
        assert ph.variance() == pytest.approx(1.0)

    def test_num_phases(self):
        assert PhaseType.erlang(5, 1.0).num_phases == 5

    def test_invalid_parameters(self):
        with pytest.raises(ModelError):
            PhaseType.erlang(0, 1.0)
        with pytest.raises(ModelError):
            PhaseType.erlang(2, -1.0)


class TestHypoexponential:
    def test_mean_is_sum_of_stage_means(self):
        ph = PhaseType.hypoexponential([1.0, 2.0, 4.0])
        assert ph.mean() == pytest.approx(1.0 + 0.5 + 0.25)

    def test_reduces_to_exponential(self):
        ph = PhaseType.hypoexponential([3.0])
        assert ph.cdf(0.7) == pytest.approx(1.0 - math.exp(-2.1), abs=1e-12)

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            PhaseType.hypoexponential([])


class TestCoxian:
    def test_degenerate_is_exponential(self):
        ph = PhaseType.coxian([2.0], [1.0])
        assert ph.cdf(1.0) == pytest.approx(1.0 - math.exp(-2.0), abs=1e-12)

    def test_mean_two_stage(self):
        # Stage 1 rate 2, continues w.p. 0.5 into stage 2 rate 1:
        # mean = 1/2 + 0.5 * 1.
        ph = PhaseType.coxian([2.0, 1.0], [0.5, 1.0])
        assert ph.mean() == pytest.approx(0.5 + 0.5 * 1.0)

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ModelError):
            PhaseType.coxian([1.0, 2.0], [1.0])

    def test_final_stage_must_complete(self):
        with pytest.raises(ModelError):
            PhaseType.coxian([1.0, 2.0], [0.5, 0.5])

    def test_probability_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            PhaseType.coxian([1.0], [1.5])


class TestUniformization:
    def test_uniformized_preserves_distribution(self):
        ph = PhaseType.erlang(3, 2.0)
        uniformized = ph.uniformized()
        for x in (0.3, 1.0, 3.0):
            assert uniformized.cdf(x) == pytest.approx(ph.cdf(x), abs=1e-10)
        assert uniformized.mean() == pytest.approx(ph.mean(), abs=1e-10)

    def test_uniformized_has_uniform_rate(self):
        ph = PhaseType.hypoexponential([1.0, 5.0]).uniformized()
        assert ph.uniform_rate() == pytest.approx(5.0)

    def test_uniformized_absorbing_state_self_loops(self):
        ph = PhaseType.exponential(2.0).uniformized()
        assert ph.chain.rate(ph.absorbing, ph.absorbing) == pytest.approx(2.0)

    def test_explicit_rate(self):
        ph = PhaseType.exponential(1.0).uniformized(rate=4.0)
        assert ph.uniform_rate() == pytest.approx(4.0)
        assert ph.cdf(1.0) == pytest.approx(1.0 - math.exp(-1.0), abs=1e-10)


class TestStructure:
    def test_absorbing_with_real_exit_rejected(self):
        from repro.ctmc.model import CTMC

        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ModelError):
            PhaseType(chain=chain, initial=0, absorbing=1)

    def test_initial_equals_absorbing_rejected(self):
        from repro.ctmc.model import CTMC

        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ModelError):
            PhaseType(chain=chain, initial=1, absorbing=1)

    def test_moment_order_validated(self):
        with pytest.raises(ModelError):
            PhaseType.exponential(1.0).moment(0)


class TestSampling:
    def test_sample_mean_matches(self, rng):
        ph = PhaseType.erlang(2, 2.0)
        samples = ph.sample(rng, size=4000)
        assert samples.mean() == pytest.approx(ph.mean(), rel=0.1)

    def test_samples_positive(self, rng):
        samples = PhaseType.exponential(1.0).sample(rng, size=100)
        assert (samples > 0.0).all()
