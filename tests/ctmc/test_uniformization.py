"""Tests for Jensen uniformization and transient/steady-state analysis."""

import numpy as np
import pytest
import scipy.linalg

from repro.ctmc.model import CTMC
from repro.ctmc.uniformization import (
    steady_state_distribution,
    transient_distribution,
    uniformize,
    uniformized_jump_matrix,
)
from repro.errors import ModelError


def generator_of(chain: CTMC) -> np.ndarray:
    dense = chain.rates.toarray()
    np.fill_diagonal(dense, 0.0)
    return dense - np.diag(dense.sum(axis=1))


@pytest.fixture
def birth_death() -> CTMC:
    return CTMC.from_transitions(
        4,
        [(0, 1, 1.5), (1, 2, 1.5), (2, 3, 1.5), (1, 0, 4.0), (2, 1, 4.0), (3, 2, 4.0)],
    )


class TestUniformize:
    def test_makes_chain_uniform(self, birth_death):
        uniform = uniformize(birth_death)
        assert uniform.is_uniform()
        assert uniform.uniform_rate() == pytest.approx(5.5)

    def test_explicit_rate(self, birth_death):
        uniform = uniformize(birth_death, rate=10.0)
        assert uniform.uniform_rate() == pytest.approx(10.0)

    def test_rate_below_max_exit_rejected(self, birth_death):
        with pytest.raises(ModelError):
            uniformize(birth_death, rate=1.0)

    def test_nonpositive_rate_rejected(self, birth_death):
        with pytest.raises(ModelError):
            uniformize(birth_death, rate=0.0)

    def test_preserves_generator(self, birth_death):
        uniform = uniformize(birth_death, rate=8.0)
        np.testing.assert_allclose(
            generator_of(uniform), generator_of(birth_death), atol=1e-12
        )

    def test_already_uniform_is_fixpoint(self):
        ring = CTMC.from_transitions(2, [(0, 1, 3.0), (1, 0, 3.0)])
        again = uniformize(ring)
        np.testing.assert_allclose(again.rates.toarray(), ring.rates.toarray())

    def test_jump_matrix_is_stochastic(self, birth_death):
        p, e = uniformized_jump_matrix(birth_death)
        np.testing.assert_allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)
        assert e == pytest.approx(5.5)


class TestTransient:
    def test_matches_matrix_exponential(self, birth_death):
        for t in (0.1, 0.7, 2.0, 10.0):
            expected = scipy.linalg.expm(generator_of(birth_death) * t)[0]
            actual = transient_distribution(birth_death, t, epsilon=1e-12)
            np.testing.assert_allclose(actual, expected, atol=1e-9)

    def test_time_zero_returns_initial(self, birth_death):
        pi = transient_distribution(birth_death, 0.0)
        np.testing.assert_allclose(pi, [1.0, 0.0, 0.0, 0.0])

    def test_custom_initial_distribution(self, birth_death):
        pi0 = np.array([0.5, 0.5, 0.0, 0.0])
        expected = pi0 @ scipy.linalg.expm(generator_of(birth_death) * 1.0)
        actual = transient_distribution(birth_death, 1.0, initial_distribution=pi0)
        np.testing.assert_allclose(actual, expected, atol=1e-9)

    def test_self_loops_do_not_change_transients(self, birth_death):
        padded = uniformize(birth_death, rate=20.0)
        for t in (0.5, 3.0):
            np.testing.assert_allclose(
                transient_distribution(padded, t),
                transient_distribution(birth_death, t),
                atol=1e-9,
            )

    def test_distribution_sums_to_one(self, birth_death):
        pi = transient_distribution(birth_death, 5.0)
        assert pi.sum() == pytest.approx(1.0, abs=1e-9)

    def test_negative_time_rejected(self, birth_death):
        with pytest.raises(ModelError):
            transient_distribution(birth_death, -1.0)

    def test_invalid_initial_distribution_rejected(self, birth_death):
        with pytest.raises(ModelError):
            transient_distribution(birth_death, 1.0, initial_distribution=np.array([1.0, 1.0, 0.0, 0.0]))

    def test_wrong_shape_initial_rejected(self, birth_death):
        with pytest.raises(ModelError):
            transient_distribution(birth_death, 1.0, initial_distribution=np.array([1.0]))


class TestSteadyState:
    def test_two_state_balance(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 3.0)])
        pi = steady_state_distribution(chain)
        np.testing.assert_allclose(pi, [0.75, 0.25])

    def test_agrees_with_long_run_transient(self, birth_death):
        pi = steady_state_distribution(birth_death)
        long_run = transient_distribution(birth_death, 200.0)
        np.testing.assert_allclose(pi, long_run, atol=1e-8)

    def test_reducible_chain_rejected(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 0, 1.0)])
        with pytest.raises(ModelError):
            steady_state_distribution(chain)

    def test_self_loops_irrelevant(self):
        plain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 3.0)])
        looped = uniformize(plain, rate=9.0)
        np.testing.assert_allclose(
            steady_state_distribution(looped), steady_state_distribution(plain)
        )
