"""Tests for CTMC time-bounded reachability."""

import math

import numpy as np
import pytest

from repro.ctmc.model import CTMC
from repro.ctmc.reachability import goal_mask, timed_reachability, timed_reachability_curve
from repro.errors import ModelError
from repro.models.zoo import queue_with_breakdowns


class TestAnalytic:
    def test_single_exponential_step(self):
        chain = CTMC.from_transitions(2, [(0, 1, 3.0)])
        for t in (0.1, 0.5, 2.0):
            value = timed_reachability(chain, [1], t)[0]
            assert value == pytest.approx(1.0 - math.exp(-3.0 * t), abs=1e-9)

    def test_two_sequential_steps_erlang(self):
        chain = CTMC.from_transitions(3, [(0, 1, 2.0), (1, 2, 2.0)])
        t = 1.3
        # Erlang(2, 2) cdf.
        expected = 1.0 - math.exp(-2.0 * t) * (1.0 + 2.0 * t)
        assert timed_reachability(chain, [2], t)[0] == pytest.approx(expected, abs=1e-9)

    def test_race_branching_probability(self):
        # From 0: rate 1 to goal, rate 3 elsewhere (absorbing).  The
        # eventual probability is 1/4, approached as t grows.
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (0, 2, 3.0)])
        value = timed_reachability(chain, [1], 50.0)[0]
        assert value == pytest.approx(0.25, abs=1e-9)

    def test_goal_state_has_probability_one(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        values = timed_reachability(chain, [1], 1.0)
        assert values[1] == 1.0

    def test_time_zero(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        np.testing.assert_allclose(timed_reachability(chain, [1], 0.0), [0.0, 1.0])

    def test_leaving_goal_does_not_matter(self):
        # Visiting B counts even if the chain would leave B again.
        chain = CTMC.from_transitions(2, [(0, 1, 2.0), (1, 0, 100.0)])
        t = 1.0
        value = timed_reachability(chain, [1], t)[0]
        assert value == pytest.approx(1.0 - math.exp(-2.0 * t), abs=1e-9)

    def test_unreachable_goal_zero(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 0, 1.0)])
        assert timed_reachability(chain, [2], 10.0)[0] == pytest.approx(0.0, abs=1e-12)


class TestProperties:
    def test_monotone_in_time(self):
        chain, goal = queue_with_breakdowns(capacity=3)
        values = [timed_reachability(chain, goal, t)[chain.initial] for t in (1.0, 2.0, 5.0, 10.0)]
        assert values == sorted(values)
        assert all(0.0 <= v <= 1.0 for v in values)

    def test_empty_goal_zero(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        np.testing.assert_allclose(timed_reachability(chain, [], 4.0), 0.0)

    def test_negative_time_rejected(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ModelError):
            timed_reachability(chain, [1], -1.0)

    def test_goal_mask_validates_range(self):
        with pytest.raises(ModelError):
            goal_mask(3, [5])


class TestCurve:
    def test_matches_pointwise_solver(self):
        chain, goal = queue_with_breakdowns(capacity=3)
        ts = [0.0, 0.5, 1.0, 2.0, 4.0, 8.0]
        curve = timed_reachability_curve(chain, goal, ts, epsilon=1e-12)
        pointwise = [timed_reachability(chain, goal, t, epsilon=1e-12)[chain.initial] for t in ts]
        np.testing.assert_allclose(curve, pointwise, atol=1e-9)

    def test_start_in_goal_is_constant_one(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)], initial=1)
        curve = timed_reachability_curve(chain, [1], [0.0, 1.0, 2.0])
        np.testing.assert_allclose(curve, 1.0)

    def test_custom_start_state(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)])
        curve = timed_reachability_curve(chain, [2], [1.0], initial=1)
        assert curve[0] == pytest.approx(1.0 - math.exp(-1.0), abs=1e-9)

    def test_monotone(self):
        chain, goal = queue_with_breakdowns(capacity=2)
        curve = timed_reachability_curve(chain, goal, [0.5, 1.0, 3.0, 9.0])
        assert list(curve) == sorted(curve)

    def test_negative_time_rejected(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ModelError):
            timed_reachability_curve(chain, [1], [-2.0])


class TestIntervalReachability:
    def test_degenerate_window_equals_plain_reachability(self):
        from repro.ctmc.reachability import interval_reachability

        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 1.0)])
        for t in (0.5, 2.0):
            plain = timed_reachability(chain, [2], t, epsilon=1e-12)[0]
            window = interval_reachability(chain, [2], 0.0, t, epsilon=1e-12)
            assert window == pytest.approx(plain, abs=1e-9)

    def test_early_visits_do_not_count(self):
        from repro.ctmc.reachability import interval_reachability

        # Fast into goal, fast out again: being in the goal during the
        # window is unlikely if the window starts late.
        chain = CTMC.from_transitions(3, [(0, 1, 50.0), (1, 2, 50.0)])
        # Goal = state 1, visited around t ~ 0.02 and left immediately.
        late = interval_reachability(chain, [1], 1.0, 1.5, epsilon=1e-12)
        early = interval_reachability(chain, [1], 0.0, 0.5, epsilon=1e-12)
        assert late < 1e-6
        assert early > 0.999

    def test_point_window(self):
        from repro.ctmc.reachability import interval_reachability

        # [t, t]: probability to BE in the goal exactly at t.
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        t = 0.8
        from repro.ctmc.uniformization import transient_distribution

        expected = transient_distribution(chain, t, epsilon=1e-12)[1]
        value = interval_reachability(chain, [1], t, t, epsilon=1e-12)
        assert value == pytest.approx(expected, abs=1e-9)

    def test_window_validation(self):
        from repro.ctmc.reachability import interval_reachability
        from repro.errors import ModelError

        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ModelError):
            interval_reachability(chain, [1], 2.0, 1.0)
        with pytest.raises(ModelError):
            interval_reachability(chain, [1], -1.0, 1.0)

    def test_monotone_in_window_end(self):
        from repro.ctmc.reachability import interval_reachability

        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0), (2, 0, 1.0)])
        values = [
            interval_reachability(chain, [2], 1.0, end, epsilon=1e-12)
            for end in (1.0, 2.0, 4.0)
        ]
        assert values == sorted(values)


class TestIntervalCertificate:
    def chain(self) -> CTMC:
        return CTMC.from_transitions(
            3, [(0, 1, 1.0), (1, 2, 2.0), (2, 0, 1.0)]
        )

    def test_composed_certificate_is_healthy(self):
        from repro.ctmc.reachability import interval_reachability_analysis

        result = interval_reachability_analysis(
            self.chain(), [2], 1.0, 4.0, epsilon=1e-10
        )
        certificate = result.certificate
        assert certificate.algorithm == "ctmc.interval_reachability"
        assert certificate.healthy
        # Each stage was granted epsilon, so the composite budget doubles.
        assert certificate.epsilon == pytest.approx(2e-10)
        assert certificate.error_bound >= 0.0
        assert 0.0 <= result.value <= 1.0

    def test_bare_value_is_bitwise_identical(self):
        from repro.ctmc.reachability import (
            interval_reachability,
            interval_reachability_analysis,
        )

        chain = self.chain()
        bare = interval_reachability(chain, [2], 0.5, 3.0, epsilon=1e-11)
        analysed = interval_reachability_analysis(chain, [2], 0.5, 3.0, epsilon=1e-11)
        assert bare == analysed.value  # bitwise: one delegates to the other

    def test_error_bound_dominates_the_stages(self):
        from repro.ctmc.reachability import (
            PreparedCTMCReachability,
            interval_reachability_analysis,
        )
        from repro.ctmc.uniformization import transient_analysis

        chain = self.chain()
        composed = interval_reachability_analysis(
            chain, [2], 1.0, 4.0, epsilon=1e-10
        ).certificate
        pi0 = np.zeros(3)
        pi0[chain.initial] = 1.0
        a = transient_analysis(
            chain, 1.0, initial_distribution=pi0, epsilon=1e-10
        ).certificate
        solver = PreparedCTMCReachability(chain, np.array([False, False, True]))
        solver.solve(3.0, epsilon=1e-10)
        b = solver.last_certificate
        # |pi~.v~ - pi.v| <= a + b + a*b: the composed bound carries both.
        assert composed.error_bound == pytest.approx(
            a.error_bound + b.error_bound + a.error_bound * b.error_bound
        )
        assert composed.right == a.right + b.right

    def test_check_returns_the_composed_certificate(self):
        from repro.logic.check import check

        chain = self.chain()
        labels = {"goal": np.array([False, False, True])}
        result = check('P=? [ F[1,4] "goal" ]', chain, labels, epsilon=1e-10)
        assert result.certificate is not None
        assert result.certificate.algorithm == "ctmc.interval_reachability"
        assert result.certificate.healthy
        assert 0.0 <= result.value <= 1.0
