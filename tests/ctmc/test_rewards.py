"""Tests for CTMC state-reward measures."""

import math

import numpy as np
import pytest

from repro.ctmc.hitting import expected_hitting_time
from repro.ctmc.model import CTMC
from repro.ctmc.rewards import (
    accumulated_reward_until,
    instantaneous_reward,
    long_run_average_reward,
)
from repro.errors import ModelError
from repro.models.zoo import queue_with_breakdowns


@pytest.fixture
def two_state() -> CTMC:
    return CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 3.0)])


class TestInstantaneous:
    def test_at_time_zero_is_initial_reward(self, two_state):
        rewards = np.array([5.0, 1.0])
        assert instantaneous_reward(two_state, rewards, 0.0) == pytest.approx(5.0)

    def test_converges_to_long_run(self, two_state):
        rewards = np.array([5.0, 1.0])
        late = instantaneous_reward(two_state, rewards, 100.0)
        assert late == pytest.approx(long_run_average_reward(two_state, rewards), abs=1e-9)

    def test_shape_checked(self, two_state):
        with pytest.raises(ModelError):
            instantaneous_reward(two_state, np.array([1.0]), 1.0)


class TestLongRun:
    def test_two_state_balance(self, two_state):
        # pi = (0.75, 0.25).
        rewards = np.array([4.0, 0.0])
        assert long_run_average_reward(two_state, rewards) == pytest.approx(3.0)

    def test_queue_utilisation(self):
        chain, _goal = queue_with_breakdowns(capacity=3)
        # Server-up indicator: states with odd index are "up".
        up = np.array([s % 2 == 1 for s in range(chain.num_states)], dtype=float)
        availability = long_run_average_reward(chain, up)
        assert 0.5 < availability < 1.0


class TestAccumulated:
    def test_unit_rewards_give_hitting_times(self):
        chain = CTMC.from_transitions(
            3, [(0, 1, 2.0), (1, 0, 3.0), (1, 2, 1.0)]
        )
        ones = np.ones(3)
        np.testing.assert_allclose(
            accumulated_reward_until(chain, ones, [2]),
            expected_hitting_time(chain, [2]),
            atol=1e-10,
        )

    def test_weighted_single_step(self):
        chain = CTMC.from_transitions(2, [(0, 1, 4.0)])
        rewards = np.array([8.0, 0.0])
        # Expected sojourn 0.25 at reward rate 8 -> 2.
        values = accumulated_reward_until(chain, rewards, [1])
        assert values[0] == pytest.approx(2.0)
        assert values[1] == 0.0

    def test_infinite_when_goal_missed(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (0, 2, 1.0)])
        values = accumulated_reward_until(chain, np.ones(3), [1])
        assert np.isinf(values[0])

    def test_negative_rewards_rejected(self, two_state):
        with pytest.raises(ModelError):
            accumulated_reward_until(two_state, np.array([-1.0, 0.0]), [1])

    def test_empty_goal_infinite(self, two_state):
        values = accumulated_reward_until(two_state, np.ones(2), [])
        assert np.isinf(values).all()


class TestFTWCAvailability:
    def test_long_run_premium_availability(self):
        """Long-run premium availability of the FTWC CTMC: the classic
        steady-state measure of [13], close to one for sane parameters
        and decreasing when failures speed up."""
        from repro.models.ftwc_direct import build_ctmc

        chain, configs, goal = build_ctmc(1, gamma=10.0)
        premium_indicator = (~goal).astype(float)
        availability = long_run_average_reward(chain, premium_indicator)
        assert 0.99 < availability < 1.0

        from repro.models.ftwc_direct import FTWCParameters

        worse_params = FTWCParameters(
            n=1, ws_fail=0.02, sw_fail=0.0025, bb_fail=0.002
        )
        worse_chain, _c, worse_goal = build_ctmc(1, worse_params, gamma=10.0)
        worse = long_run_average_reward(worse_chain, (~worse_goal).astype(float))
        assert worse < availability
