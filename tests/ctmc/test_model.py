"""Tests for the CTMC model class."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.ctmc.model import CTMC
from repro.errors import ModelError


@pytest.fixture
def ring() -> CTMC:
    return CTMC.from_transitions(3, [(0, 1, 2.0), (1, 2, 2.0), (2, 0, 2.0)])


class TestConstruction:
    def test_from_transitions_accumulates_duplicates(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (0, 1, 2.5)])
        assert chain.rate(0, 1) == pytest.approx(3.5)

    def test_zero_rate_transitions_dropped(self):
        chain = CTMC.from_transitions(2, [(0, 1, 0.0)])
        assert chain.num_transitions == 0

    def test_negative_rate_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 1, -1.0)])

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 5, 1.0)])

    def test_empty_state_space_rejected(self):
        with pytest.raises(ModelError):
            CTMC(rates=sp.csr_matrix((0, 0)))

    def test_initial_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 1, 1.0)], initial=7)

    def test_state_names_length_checked(self):
        with pytest.raises(ModelError):
            CTMC.from_transitions(2, [(0, 1, 1.0)], state_names=["only-one"])

    def test_from_generator(self):
        q = np.array([[-2.0, 2.0], [3.0, -3.0]])
        chain = CTMC.from_generator(q)
        assert chain.rate(0, 1) == 2.0
        assert chain.rate(1, 0) == 3.0

    def test_from_generator_bad_diagonal_rejected(self):
        q = np.array([[-1.0, 2.0], [3.0, -3.0]])
        with pytest.raises(ModelError):
            CTMC.from_generator(q)

    def test_from_generator_negative_offdiagonal_rejected(self):
        q = np.array([[1.0, -1.0], [3.0, -3.0]])
        with pytest.raises(ModelError):
            CTMC.from_generator(q)

    def test_from_generator_non_square_rejected(self):
        with pytest.raises(ModelError):
            CTMC.from_generator(np.zeros((2, 3)))


class TestQueries:
    def test_exit_rates(self, ring):
        np.testing.assert_allclose(ring.exit_rates(), [2.0, 2.0, 2.0])

    def test_successors(self, ring):
        assert ring.successors(0) == [(1, 2.0)]

    def test_absorbing_detection(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        assert not chain.is_absorbing(0)
        assert chain.is_absorbing(1)
        assert chain.absorbing_states() == [1]

    def test_uniformity(self, ring):
        assert ring.is_uniform()
        assert ring.uniform_rate() == pytest.approx(2.0)

    def test_non_uniform_detected(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 2.0)])
        assert not chain.is_uniform()
        with pytest.raises(ModelError):
            chain.uniform_rate()

    def test_memory_bytes_positive(self, ring):
        assert ring.memory_bytes() > 0


class TestDerived:
    def test_embedded_dtmc_rows_sum_to_one(self):
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.0), (0, 2, 3.0), (1, 0, 2.0)]
        )
        p = chain.embedded_dtmc_matrix()
        np.testing.assert_allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)
        assert p[0, 2] == pytest.approx(0.75)
        # Absorbing state 2 got a self-loop.
        assert p[2, 2] == pytest.approx(1.0)

    def test_restricted_to(self):
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0)], state_names=["a", "b", "c"]
        )
        sub = chain.restricted_to([0, 1])
        assert sub.num_states == 2
        assert sub.rate(0, 1) == 1.0
        assert sub.rate(1, 0) == 1.0
        assert sub.state_names == ["a", "b"]

    def test_restricted_to_reindexes_initial(self):
        chain = CTMC.from_transitions(3, [(1, 2, 1.0)], initial=1)
        sub = chain.restricted_to([1, 2])
        assert sub.initial == 0
