"""Tests for the diagnostic vocabulary and report rendering."""

import json
import re
from pathlib import Path

import pytest

from repro.lint import (
    CODES,
    Diagnostic,
    LintReport,
    Severity,
    code_title,
    make_diagnostic,
    render_code_table,
    sort_diagnostics,
)


class TestCodes:
    def test_registry_shape(self):
        for code, (severity, title) in CODES.items():
            assert len(code) == 4 and code[0] in "UANSGPQT", code
            assert isinstance(severity, Severity)
            assert title

    def test_issue_anchor_codes_present(self):
        # The codes the diagnostic framework was specified around.
        assert code_title("U001") == "non-uniform exit rates"
        assert "alternation" in code_title("A003")
        assert "NaN" in code_title("N002")

    def test_self_lint_codes_present(self):
        assert "without its lock" in code_title("T001")
        assert "deadlock" in code_title("T002")
        assert "@guarded_by" in code_title("T003")
        assert "float equality" in code_title("T004")
        assert "sum()" in code_title("T005")

    def test_make_diagnostic_defaults_severity(self):
        d = make_diagnostic("U001", "rates differ")
        assert d.severity is Severity.ERROR
        w = make_diagnostic("S001", "unreachable")
        assert w.severity is Severity.WARNING

    def test_make_diagnostic_rejects_unknown_code(self):
        with pytest.raises(KeyError):
            make_diagnostic("X999", "nope")

    def test_severity_override(self):
        d = make_diagnostic("S001", "meh", severity=Severity.ERROR)
        assert d.severity is Severity.ERROR

    def test_docs_table_in_sync_with_registry(self):
        # docs/lint.md embeds the output of render_code_table() between
        # the codes:begin/codes:end markers; regenerate with
        # ``python -m repro.lint.diagnostics``.
        docs = Path(__file__).parents[2] / "docs" / "lint.md"
        text = docs.read_text(encoding="utf-8")
        match = re.search(
            r"<!-- codes:begin -->\n(.*?)<!-- codes:end -->",
            text,
            flags=re.DOTALL,
        )
        assert match is not None, "docs/lint.md lost its codes:begin/end markers"
        assert match.group(1).strip() == render_code_table().strip(), (
            "docs/lint.md code table is stale; regenerate with "
            "`python -m repro.lint.diagnostics`"
        )

    def test_render_code_table_covers_registry(self):
        table = render_code_table()
        rows = re.findall(
            r"^\| ([A-Z]\d{3}) \| (error|warning) \| (.+?) \|$",
            table,
            flags=re.MULTILINE,
        )
        assert {code for code, _, _ in rows} == set(CODES)
        for code, severity, title in rows:
            assert CODES[code][0].value == severity, code
            assert CODES[code][1] == title, code


class TestDiagnostic:
    def test_str_contains_code_and_location(self):
        d = make_diagnostic("N002", "NaN rate", states=[3], location="input")
        assert "[error] N002 [input]: NaN rate" == str(d)

    def test_as_dict_round_trips_through_json(self):
        d = make_diagnostic("A001", "cycle", states=[0, 1])
        loaded = json.loads(json.dumps(d.as_dict()))
        assert loaded["code"] == "A001"
        assert loaded["severity"] == "error"
        assert loaded["states"] == [0, 1]
        assert loaded["title"] == code_title("A001")

    def test_frozen(self):
        d = make_diagnostic("A001", "cycle")
        with pytest.raises(AttributeError):
            d.code = "A002"


class TestSorting:
    def test_errors_before_warnings_then_code(self):
        warning = make_diagnostic("S001", "w")
        error_b = make_diagnostic("U001", "e2")
        error_a = make_diagnostic("A001", "e1")
        assert sort_diagnostics([warning, error_b, error_a]) == [
            error_a,
            error_b,
            warning,
        ]


class TestLintReport:
    def make_report(self, *diagnostics: Diagnostic) -> LintReport:
        report = LintReport(target="t", kind="imc")
        report.extend(diagnostics)
        return report

    def test_clean_report(self):
        report = self.make_report()
        assert not report.has_errors
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 0
        assert "clean" in report.render_text()

    def test_errors_drive_exit_code(self):
        report = self.make_report(make_diagnostic("U001", "boom"))
        assert report.has_errors
        assert report.exit_code() == 1

    def test_strict_promotes_warnings(self):
        report = self.make_report(make_diagnostic("S001", "meh"))
        assert report.exit_code() == 0
        assert report.exit_code(strict=True) == 1

    def test_summary_and_codes(self):
        report = self.make_report(
            make_diagnostic("U001", "e"), make_diagnostic("S001", "w")
        )
        assert report.summary() == {"errors": 1, "warnings": 1}
        assert report.codes() == {"U001", "S001"}

    def test_render_text_lists_findings_sorted(self):
        report = self.make_report(
            make_diagnostic("S001", "warn"), make_diagnostic("U001", "err")
        )
        text = report.render_text()
        assert text.index("U001") < text.index("S001")
        assert "1 error(s), 1 warning(s)" in text

    def test_render_json_is_valid_json(self):
        report = self.make_report(make_diagnostic("N002", "NaN", states=[2]))
        document = json.loads(report.render_json())
        assert document["target"] == "t"
        assert document["summary"] == {"errors": 1, "warnings": 0}
        assert document["diagnostics"][0]["code"] == "N002"
