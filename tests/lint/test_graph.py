"""The whole-model graph pass (``Qxxx`` codes) and its file front-end."""

from pathlib import Path

import numpy as np
import pytest

from repro.io.json_io import load_model
from repro.io.tra import read_ctmc_tra, read_ctmdp_tra
from repro.lint import Severity, lint_graph, lint_path, sibling_goal_mask
from repro.models import ftwc_direct

FIXTURES = Path(__file__).parents[1] / "fixtures"


def codes_of(findings) -> set[str]:
    return {finding.code for finding in findings}


class TestDefectFixtures:
    def test_unreachable_goal_fires_q001_and_q002(self):
        """Self-loops only: the goal is never entered, and the initial
        state's own loop is a goal-free trap -- in a finite model Q001
        always drags a Q002 or Q003 along (the stuck mass must live
        somewhere)."""
        ctmdp = read_ctmdp_tra(FIXTURES / "defect_unreachable_goal.tra")
        goal = sibling_goal_mask(FIXTURES / "defect_unreachable_goal.tra", 2)
        np.testing.assert_array_equal(goal, [False, True])
        findings = lint_graph(ctmdp, goal=goal)
        assert codes_of(findings) == {"Q001", "Q002"}
        q001 = next(f for f in findings if f.code == "Q001")
        assert q001.severity is Severity.ERROR
        assert 1 in q001.states

    def test_trap_mec_fires_q002_only(self):
        ctmdp = read_ctmdp_tra(FIXTURES / "defect_trap_mec.tra")
        goal = sibling_goal_mask(FIXTURES / "defect_trap_mec.tra", 4)
        findings = lint_graph(ctmdp, goal=goal)
        assert codes_of(findings) == {"Q002"}
        (q002,) = findings
        assert q002.severity is Severity.WARNING
        assert set(q002.states) == {2, 3}

    def test_deadlock_fires_q003(self):
        chain = read_ctmc_tra(FIXTURES / "defect_deadlock.tra")
        findings = lint_graph(chain)
        assert codes_of(findings) == {"Q003"}
        (q003,) = findings
        assert q003.severity is Severity.ERROR
        assert q003.states == (1,)

    def test_zeno_imc_fires_q004(self):
        imc = load_model(FIXTURES / "defect_zeno.json")
        findings = lint_graph(imc)
        assert "Q004" in codes_of(findings)
        q004 = next(f for f in findings if f.code == "Q004")
        assert set(q004.states) == {0, 1}

    def test_goal_deadlocks_are_exempt(self):
        """Absorbing goal states are the standard idiom, not a defect."""
        chain = read_ctmc_tra(FIXTURES / "defect_deadlock.tra")
        goal = np.array([False, True])
        assert lint_graph(chain, goal=goal) == []


class TestCleanModels:
    def test_ftwc_is_graph_clean(self):
        model = ftwc_direct.build_ctmdp(1)
        assert lint_graph(model.ctmdp, goal=model.goal_mask) == []

    def test_without_goal_only_goal_free_codes(self):
        ctmdp = read_ctmdp_tra(FIXTURES / "defect_unreachable_goal.tra")
        # No goal known: Q001/Q002 cannot fire, and there is no deadlock.
        assert lint_graph(ctmdp) == []


class TestFileFrontend:
    def test_lint_path_graph_flag(self):
        report = lint_path(FIXTURES / "defect_trap_mec.tra", graph=True)
        assert "Q002" in report.codes()
        # Without the flag the graph pass stays off.
        plain = lint_path(FIXTURES / "defect_trap_mec.tra")
        assert not any(code.startswith("Q") for code in plain.codes())

    def test_sibling_goal_mask_prefers_goal_proposition(self):
        mask = sibling_goal_mask(FIXTURES / "defect_trap_mec.tra", 4)
        np.testing.assert_array_equal(mask, [False, True, False, False])

    def test_sibling_goal_mask_absent_lab(self, tmp_path):
        target = tmp_path / "model.tra"
        target.write_text("STATES 1\nTRANSITIONS 0\n", encoding="utf-8")
        assert sibling_goal_mask(target, 1) is None


class TestSeverityRegistry:
    @pytest.mark.parametrize("code", ["Q001", "Q002", "Q003", "Q004"])
    def test_codes_registered(self, code):
        from repro.lint import CODES

        severity, title = CODES[code]
        assert title
        assert severity in (Severity.ERROR, Severity.WARNING)
