"""Tests for the per-model-class analyzers."""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.ctmc.model import CTMC
from repro.imc.model import IMC, TAU
from repro.imc.transform import imc_to_ctmdp
from repro.lint import (
    Severity,
    lint_ctmc,
    lint_ctmdp,
    lint_dtmdp,
    lint_generator,
    lint_imc,
    lint_lts,
    lint_model,
    lint_strict_alternation,
)
from repro.mdp.model import DTMDP


def codes(findings, severity=None):
    return {
        f.code for f in findings if severity is None or f.severity is severity
    }


class TestLintCtmc:
    def test_clean_chain(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        assert lint_ctmc(chain) == []

    def test_nan_rate_injected_after_construction(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        chain.rates.data[0] = np.nan
        findings = lint_ctmc(chain)
        assert "N002" in codes(findings, Severity.ERROR)
        nan = next(f for f in findings if f.code == "N002")
        assert nan.states == (0,)

    def test_negative_rate_injected(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        chain.rates.data[1] = -3.0
        assert "N002" in codes(lint_ctmc(chain), Severity.ERROR)

    def test_non_uniform_flagged_only_on_request(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 5.0)])
        assert "U001" not in codes(lint_ctmc(chain))
        assert "U001" in codes(
            lint_ctmc(chain, expect_uniform=True), Severity.ERROR
        )

    def test_unreachable_states_warned(self):
        chain = CTMC.from_transitions(3, [(0, 0, 1.0), (2, 2, 1.0)])
        findings = lint_ctmc(chain)
        warning = next(f for f in findings if f.code == "S001")
        assert set(warning.states) == {1, 2}

    def test_goal_checks(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        empty = np.zeros(2, dtype=bool)
        assert "G001" in codes(lint_ctmc(chain, goal=empty))
        misshapen = np.zeros(3, dtype=bool)
        assert "G002" in codes(
            lint_ctmc(chain, goal=misshapen), Severity.ERROR
        )
        leaky = np.array([False, True])
        assert "G003" in codes(lint_ctmc(chain, goal=leaky))

    def test_absorbing_goal_not_flagged(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        goal = np.array([False, True])
        assert "G003" not in codes(lint_ctmc(chain, goal=goal))


class TestLintGenerator:
    def test_clean_generator(self):
        q = np.array([[-1.0, 1.0], [2.0, -2.0]])
        assert lint_generator(q) == []

    def test_row_sum_drift(self):
        q = np.array([[-1.0, 1.0], [2.0, -2.5]])
        findings = lint_generator(q)
        drift = next(f for f in findings if f.code == "N001")
        assert drift.states == (1,)

    def test_negative_off_diagonal(self):
        q = np.array([[1.0, -1.0], [2.0, -2.0]])
        assert "N002" in codes(lint_generator(q), Severity.ERROR)

    def test_non_finite_entries(self):
        q = np.array([[-np.inf, np.inf], [2.0, -2.0]])
        assert codes(lint_generator(q)) == {"N002"}

    def test_non_square(self):
        assert "S005" in codes(lint_generator(np.zeros((2, 3))))


class TestLintCtmdp:
    def uniform(self) -> CTMDP:
        return CTMDP.from_transitions(
            2, [(0, "a", {1: 2.0}), (1, "a", {0: 2.0})]
        )

    def test_clean_model(self):
        assert lint_ctmdp(self.uniform()) == []

    def test_non_uniform_rates(self):
        model = CTMDP.from_transitions(
            2, [(0, "a", {1: 1.0}), (1, "a", {0: 5.0})]
        )
        findings = lint_ctmdp(model)
        offender = next(f for f in findings if f.code == "U001")
        assert offender.severity is Severity.ERROR
        assert len(offender.states) >= 1

    def test_uniformity_check_can_be_disabled(self):
        model = CTMDP.from_transitions(
            2, [(0, "a", {1: 1.0}), (1, "a", {0: 5.0})]
        )
        assert "U001" not in codes(lint_ctmdp(model, expect_uniform=False))

    def test_nan_injected_in_csr_data(self):
        model = self.uniform()
        model.rate_matrix.data[0] = np.nan
        assert "N002" in codes(lint_ctmdp(model), Severity.ERROR)

    def test_empty_rate_function(self):
        # from_transitions rejects empty rate functions up front, so the
        # defect is assembled through the raw constructor.
        import scipy.sparse as sp

        matrix = sp.csr_matrix(
            (np.array([2.0, 2.0]), np.array([1, 0]), np.array([0, 0, 1, 2])),
            shape=(3, 2),
        )
        model = CTMDP(
            num_states=2,
            sources=np.array([0, 0, 1]),
            labels=["a", "b", "a"],
            rate_matrix=matrix,
        )
        findings = lint_ctmdp(model)
        assert "S004" in codes(findings, Severity.ERROR)

    def test_choiceless_reachable_state(self):
        model = CTMDP.from_transitions(2, [(0, "a", {1: 2.0})])
        assert "S006" in codes(lint_ctmdp(model, expect_uniform=False))

    def test_goal_mask_shape(self):
        assert "G002" in codes(
            lint_ctmdp(self.uniform(), goal=np.zeros(5, dtype=bool))
        )


class TestLintDtmdp:
    def test_clean(self):
        mdp = DTMDP.from_transitions(
            2, [(0, "a", {1: 1.0}), (1, "a", {0: 1.0})]
        )
        assert lint_dtmdp(mdp) == []

    def test_mass_drift_injected(self):
        mdp = DTMDP.from_transitions(
            2, [(0, "a", {1: 1.0}), (1, "a", {0: 1.0})]
        )
        mdp.probabilities.data[0] = 0.7
        findings = lint_dtmdp(mdp)
        drift = next(f for f in findings if f.code == "N001")
        assert drift.states == (0,)


class TestLintLts:
    def test_clean_lts(self):
        lts = IMC(num_states=2, interactive=[(0, "a", 1), (1, "b", 0)])
        assert lint_lts(lts) == []

    def test_markov_transitions_flagged(self):
        hybrid = IMC(
            num_states=2,
            interactive=[(0, "a", 1), (1, "b", 0)],
            markov=[(0, 1.0, 1)],
        )
        assert "A003" in codes(lint_lts(hybrid), Severity.ERROR)

    def test_deadlock_is_warning_only(self):
        lts = IMC(num_states=2, interactive=[(0, "a", 1)])
        findings = lint_lts(lts)
        assert "S006" in codes(findings, Severity.WARNING)
        assert codes(findings, Severity.ERROR) == set()


class TestStrictAlternation:
    def test_transform_output_is_alternating(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1)],
            markov=[(1, 2.0, 2), (2, 2.0, 1)],
        )
        result = imc_to_ctmdp(imc)
        assert lint_strict_alternation(result.alternation.imc) == []

    def test_hybrid_state_flagged(self):
        hybrid = IMC(
            num_states=2,
            interactive=[(0, TAU, 1)],
            markov=[(0, 1.0, 1), (1, 1.0, 0)],
        )
        findings = lint_strict_alternation(hybrid)
        assert "A003" in codes(findings, Severity.ERROR)

    def test_markov_to_markov_flagged(self):
        chain_like = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 1.0, 0)])
        messages = " ".join(
            f.message for f in lint_strict_alternation(chain_like)
        )
        assert "Markov alternation" in messages


class TestLintImcEdgeCases:
    def test_nan_rate_injected_in_transition_list(self):
        imc = IMC(num_states=2, markov=[(0, 2.0, 1), (1, 2.0, 0)])
        imc.markov[0] = (0, float("nan"), 1)
        assert "N002" in codes(lint_imc(imc), Severity.ERROR)

    def test_dangling_index_injected(self):
        imc = IMC(num_states=2, markov=[(0, 2.0, 1), (1, 2.0, 0)])
        imc.markov[0] = (0, 2.0, 7)
        findings = lint_imc(imc)
        assert "S002" in codes(findings, Severity.ERROR)


class TestDispatch:
    def test_dispatches_by_type(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {1: 2.0}), (1, "a", {0: 2.0})]
        )
        assert lint_model(ctmdp) == []
        chain = CTMC.from_transitions(2, [(0, 1, 1.0), (1, 0, 1.0)])
        assert lint_model(chain) == []
        lts = IMC(num_states=2, interactive=[(0, "a", 1), (1, "b", 0)])
        assert lint_model(lts) == []
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 5.0, 0)])
        assert "U001" in codes(lint_model(imc))

    def test_rejects_unknown_types(self):
        with pytest.raises(TypeError):
            lint_model(object())
