"""Property-based tests: linters are total, clean models stay clean.

Two families of properties:

* **Robustness** -- on arbitrary random models the analyzers never
  crash, return registered codes only, and keep their output
  deterministic.
* **Soundness on well-formed input** -- models built by the
  constructors carry no numeric or structural error findings, and
  closed uniform non-Zeno IMCs both lint free of fatal findings and
  survive the full transformation pipeline, whose output lints clean
  again.
"""

from hypothesis import given, settings

from repro.errors import ReproError
from repro.imc.transform import imc_to_ctmdp
from repro.lint import (
    CODES,
    Diagnostic,
    Severity,
    lint_ctmdp,
    lint_imc,
    lint_model,
    lint_pipeline,
    lint_strict_alternation,
)

from tests.conftest import (
    random_closed_uniform_imcs,
    random_imcs,
    random_uniform_imcs,
)

FATAL = {"A001", "A002", "U001", "N002", "S002"}


class TestRobustness:
    @given(imc=random_imcs())
    @settings(max_examples=60, deadline=None)
    def test_lint_imc_never_crashes(self, imc):
        findings = lint_imc(imc)
        assert all(isinstance(f, Diagnostic) for f in findings)
        assert all(f.code in CODES for f in findings)

    @given(imc=random_imcs())
    @settings(max_examples=40, deadline=None)
    def test_lint_model_dispatch_never_crashes(self, imc):
        findings = lint_model(imc)
        assert all(f.code in CODES for f in findings)

    @given(imc=random_imcs())
    @settings(max_examples=40, deadline=None)
    def test_lint_is_deterministic(self, imc):
        assert lint_imc(imc) == lint_imc(imc)

    @given(imc=random_imcs())
    @settings(max_examples=40, deadline=None)
    def test_states_are_in_range(self, imc):
        for finding in lint_imc(imc):
            assert all(0 <= s < imc.num_states for s in finding.states)


class TestWellFormedModels:
    @given(imc=random_uniform_imcs())
    @settings(max_examples=40, deadline=None)
    def test_uniform_imcs_never_flag_uniformity(self, imc):
        codes = {f.code for f in lint_imc(imc, closed=False)}
        assert "U001" not in codes
        assert "N002" not in codes
        assert "S002" not in codes

    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=40, deadline=None)
    def test_closed_uniform_imcs_lint_free_of_fatal_findings(self, imc):
        codes = {f.code for f in lint_imc(imc, closed=True)}
        assert codes & FATAL == set()

    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=25, deadline=None)
    def test_transform_pipeline_output_lints_clean(self, imc):
        try:
            result = imc_to_ctmdp(imc)
        except ReproError:
            # The transform may reject for its own reasons (e.g. word
            # blow-up limits); the property only covers what it accepts.
            return
        assert lint_strict_alternation(result.alternation.imc) == []
        errors = [
            f
            for f in lint_ctmdp(result.ctmdp)
            if f.severity is Severity.ERROR
        ]
        assert errors == []

    @given(imc=random_closed_uniform_imcs(max_states=5))
    @settings(max_examples=15, deadline=None)
    def test_pipeline_invariants_hold(self, imc):
        findings = lint_pipeline(imc)
        pipeline_errors = [f for f in findings if f.code.startswith("P")]
        assert pipeline_errors == []
