"""Tests for the opt-in sanitizer hooks at engine trust boundaries."""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.engine.plan import Query
from repro.engine.registry import ModelRegistry
from repro.engine.solver import QueryEngine
from repro.errors import LintError
from repro.lint import env_flag, sanitize_enabled, sanitize_model, sanitizing

SPEC = {"family": "ftwc", "n": 1}


def non_uniform_ctmdp() -> CTMDP:
    return CTMDP.from_transitions(2, [(0, "a", {1: 1.0}), (1, "a", {0: 5.0})])


class TestEnabling:
    def test_disabled_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()

    def test_environment_variable(self, monkeypatch):
        for value in ("1", "true", "YES", "On"):
            monkeypatch.setenv("REPRO_SANITIZE", value)
            assert sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not sanitize_enabled()

    def test_context_manager(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not sanitize_enabled()
        with sanitizing():
            assert sanitize_enabled()
            with sanitizing():
                assert sanitize_enabled()
            assert sanitize_enabled()
        assert not sanitize_enabled()

    def test_context_manager_noop(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        with sanitizing(enabled=False):
            assert not sanitize_enabled()


class TestEnvFlag:
    FLAG = "REPRO_TEST_FLAG"

    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(self.FLAG, raising=False)
        assert env_flag(self.FLAG) is False
        assert env_flag(self.FLAG, default=True) is True

    def test_truthy_values(self, monkeypatch):
        for value in ("1", "true", "True", "YES", "on", " on ", "ON"):
            monkeypatch.setenv(self.FLAG, value)
            assert env_flag(self.FLAG) is True, value

    def test_falsy_values(self, monkeypatch):
        # An explicit falsy value wins even over default=True: setting
        # REPRO_SANITIZE=0 must actually turn the sanitizer off.
        for value in ("", "0", "false", "False", "NO", "off", " Off "):
            monkeypatch.setenv(self.FLAG, value)
            assert env_flag(self.FLAG) is False, value
            assert env_flag(self.FLAG, default=True) is False, value

    def test_unrecognized_value_warns_and_fails_safe(self, monkeypatch):
        monkeypatch.setenv(self.FLAG, "enabled")
        with pytest.warns(UserWarning, match="REPRO_TEST_FLAG"):
            assert env_flag(self.FLAG) is True

    def test_sanitize_enabled_uses_env_flag(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "off")
        assert not sanitize_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "on")
        assert sanitize_enabled()


class TestSanitizeModel:
    def test_clean_model_returns_warnings(self):
        model = CTMDP.from_transitions(
            2, [(0, "a", {1: 2.0}), (1, "a", {0: 2.0})]
        )
        assert sanitize_model(model) == []

    def test_errors_raise_lint_error(self):
        with pytest.raises(LintError, match="U001"):
            sanitize_model(non_uniform_ctmdp(), where="unit-test")

    def test_boundary_named_in_message(self):
        with pytest.raises(LintError, match="unit-test"):
            sanitize_model(non_uniform_ctmdp(), where="unit-test")


class TestRegistryBoundary:
    def test_build_is_sanitized(self):
        registry = ModelRegistry()
        with sanitizing():
            built = registry.get(SPEC)
        assert built.source == "build"
        assert registry.metrics.counter("sanitize_checks") == 1

    def test_memory_hits_are_exempt(self):
        registry = ModelRegistry()
        with sanitizing():
            registry.get(SPEC)
            registry.get(SPEC)
        assert registry.metrics.counter("sanitize_checks") == 1

    def test_disabled_costs_nothing(self):
        registry = ModelRegistry()
        registry.get(SPEC)
        assert registry.metrics.counter("sanitize_checks") == 0

    def test_tampered_disk_cache_is_refused(self, tmp_path):
        cache = tmp_path / "cache"
        ModelRegistry(cache_dir=cache).get(SPEC)
        [tra_path] = cache.glob("*.tra")
        # Corrupt one cached rate: still positive (the reader accepts it)
        # but no longer uniform (the sanitizer must catch it).
        lines = tra_path.read_text().splitlines()
        first_data = next(
            i for i, line in enumerate(lines) if len(line.split()) == 5
        )
        fields = lines[first_data].split()
        fields[-1] = repr(float(fields[-1]) * 3.0)
        lines[first_data] = " ".join(fields)
        tra_path.write_text("\n".join(lines) + "\n")

        fresh = ModelRegistry(cache_dir=cache)
        with sanitizing():
            with pytest.raises(LintError, match="registry:disk"):
                fresh.get(SPEC)
        # Without sanitizing, the tampered entry flows through silently.
        assert ModelRegistry(cache_dir=cache).get(SPEC).source == "disk"


class TestSolverBoundary:
    def test_mutated_memory_model_yields_error_records(self):
        engine = QueryEngine()
        built = engine.model(SPEC)
        built.model.rate_matrix.data[0] = np.nan
        with sanitizing():
            batch = engine.run([Query(model=SPEC, t=1.0)])
        result = batch.results[0]
        assert not result.ok
        assert "sanitizer rejected" in result.error
        assert "solver-prepare" in result.error

    def test_clean_run_counts_both_boundaries(self):
        engine = QueryEngine()
        with sanitizing():
            batch = engine.run([Query(model=SPEC, t=1.0)])
        assert batch.results[0].ok
        assert engine.metrics.counter("sanitize_checks") == 2
