"""Tests for the pipeline invariant pass (Lemmas 1-3, Section 4.1)."""

from repro.imc.model import IMC, TAU
from repro.lint import (
    check_composition_invariant,
    check_hiding_invariant,
    lint_pipeline,
)
from repro.models.ftwc import build_system_imc


def codes(findings):
    return {f.code for f in findings}


def uniform_imc(rate: float = 2.0) -> IMC:
    return IMC(
        num_states=3,
        interactive=[(0, TAU, 1)],
        markov=[(1, rate, 2), (2, rate, 0)],
    )


class TestInvariantChecks:
    def test_hiding_preserves_uniformity(self):
        imc = IMC(
            num_states=2,
            interactive=[(0, "go", 1)],
            markov=[(1, 3.0, 0)],
        )
        assert check_hiding_invariant(imc) == []

    def test_hiding_skipped_for_non_uniform_input(self):
        non_uniform = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 5.0, 0)])
        assert check_hiding_invariant(non_uniform) == []

    def test_composition_adds_rates(self):
        left = uniform_imc(2.0)
        right = uniform_imc(3.0)
        assert check_composition_invariant(left, right) == []

    def test_composition_with_sync(self):
        left = IMC(
            num_states=2, interactive=[(0, "go", 1)], markov=[(1, 2.0, 0)]
        )
        right = IMC(
            num_states=2, interactive=[(0, "go", 1)], markov=[(1, 1.0, 0)]
        )
        assert check_composition_invariant(left, right, sync=("go",)) == []


class TestLintPipeline:
    def test_clean_uniform_input(self):
        findings = lint_pipeline(uniform_imc())
        assert {f.code for f in findings if f.severity.value == "error"} == set()

    def test_non_uniform_input_skips_transform_stages(self):
        non_uniform = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 5.0, 0)])
        findings = lint_pipeline(non_uniform)
        found = codes(findings)
        assert "U001" in found
        # Fatal input defects gate the downstream stages entirely.
        assert not any(code.startswith("P") for code in found)
        assert not any(f.location in ("bisim", "alternating", "ctmdp") for f in findings)

    def test_zeno_input_reported_not_crashed(self):
        zeno = IMC(
            num_states=2,
            interactive=[(0, TAU, 1), (1, TAU, 0)],
            markov=[],
        )
        findings = lint_pipeline(zeno)
        assert "A001" in codes(findings)

    def test_ftwc_pipeline_is_invariant_clean(self):
        system = build_system_imc(1)
        findings = lint_pipeline(system.imc)
        errors = [f for f in findings if f.severity.value == "error"]
        assert errors == []

    def test_stage_locations_are_tagged(self):
        findings = lint_pipeline(uniform_imc())
        for finding in findings:
            assert finding.location in (
                "input",
                "hiding",
                "composition",
                "bisim",
                "alternating",
                "ctmdp",
            )
