"""Tests for linting on-disk model files, including the defect fixtures.

The committed fixtures under ``tests/fixtures/`` are the PR's acceptance
artefacts: each one carries exactly one planted defect, and the linter
must name it with the expected stable code in both output formats.
"""

import json
from pathlib import Path

import pytest

from repro.errors import ModelError
from repro.io.tra import write_ctmc_tra, write_ctmdp_tra
from repro.lint import lint_path
from repro.models.ftwc_direct import build_ctmc, build_ctmdp

FIXTURES = Path(__file__).parent.parent / "fixtures"


class TestDefectFixtures:
    def test_nan_rate_tra_yields_n002(self):
        report = lint_path(FIXTURES / "defect_nan_rate.tra")
        assert report.kind == "ctmc"
        assert "N002" in report.codes()
        assert report.has_errors
        assert report.exit_code() == 1

    def test_nonuniform_tra_yields_u001(self):
        report = lint_path(FIXTURES / "defect_nonuniform.tra")
        assert report.kind == "ctmdp"
        assert "U001" in report.codes()
        assert report.has_errors

    def test_dangling_index_tra_yields_s002(self):
        report = lint_path(FIXTURES / "defect_dangling.tra")
        assert "S002" in report.codes()
        assert report.has_errors

    def test_zeno_json_yields_a001(self):
        report = lint_path(FIXTURES / "defect_zeno.json")
        assert report.kind == "imc"
        assert "A001" in report.codes()
        assert report.has_errors

    @pytest.mark.parametrize(
        "fixture, code",
        [
            ("defect_nan_rate.tra", "N002"),
            ("defect_nonuniform.tra", "U001"),
            ("defect_zeno.json", "A001"),
        ],
    )
    def test_codes_appear_in_both_renderings(self, fixture, code):
        report = lint_path(FIXTURES / fixture)
        assert code in report.render_text()
        document = json.loads(report.render_json())
        assert code in {d["code"] for d in document["diagnostics"]}


class TestCleanFiles:
    def test_clean_ctmc_tra(self, tmp_path):
        chain, _configs, _goal = build_ctmc(1)
        path = tmp_path / "clean.tra"
        write_ctmc_tra(chain, path)
        report = lint_path(path)
        assert not report.has_errors

    def test_clean_ctmdp_tra(self, tmp_path):
        built = build_ctmdp(1)
        path = tmp_path / "clean.tra"
        write_ctmdp_tra(built.ctmdp, path)
        report = lint_path(path)
        assert not report.has_errors


class TestUsageErrors:
    def test_unknown_suffix(self, tmp_path):
        path = tmp_path / "model.xyz"
        path.write_text("whatever")
        with pytest.raises(ModelError, match="unknown suffix"):
            lint_path(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(OSError):
            lint_path(tmp_path / "absent.tra")

    def test_malformed_header_is_usage_error(self, tmp_path):
        path = tmp_path / "bad.tra"
        path.write_text("NOT-A-HEADER 3\n")
        with pytest.raises(ModelError):
            lint_path(path)


class TestScanDiagnostics:
    def test_declared_count_mismatch_is_s005(self, tmp_path):
        path = tmp_path / "short.tra"
        path.write_text("STATES 2\nTRANSITIONS 5\n1 2 1.0\n")
        report = lint_path(path)
        assert "S005" in report.codes()

    def test_inconsistent_row_metadata_is_s005(self, tmp_path):
        path = tmp_path / "rows.tra"
        path.write_text(
            "STATES 2\nCHOICES 1\nINITIAL 1\n"
            "1 a 1 2 1.0\n"
            "1 b 1 1 1.0\n"
        )
        report = lint_path(path)
        assert "S005" in report.codes()

    def test_out_of_range_initial_is_s002(self, tmp_path):
        path = tmp_path / "init.tra"
        path.write_text("STATES 2\nCHOICES 1\nINITIAL 9\n1 a 1 2 1.0\n")
        report = lint_path(path)
        assert "S002" in report.codes()
