"""Tests for CTMDP bisimulation minimisation and equivalence."""

import numpy as np
import pytest

from repro.bisim.ctmdp_bisim import (
    ctmdp_bisimulation,
    ctmdp_equivalent,
    ctmdp_minimize,
)
from repro.bisim.quotient import map_labels_through
from repro.core.ctmdp import CTMDP
from repro.core.reachability import timed_reachability
from repro.errors import ModelError
from repro.models.ftwc import build_compositional
from repro.models.ftwc_direct import build_ctmdp
from repro.models.job_scheduling import build_job_scheduling
from repro.models.zoo import two_phase_race_ctmdp


class TestMinimize:
    def test_symmetric_jobs_lump_by_count(self):
        # Three identical jobs: states with equally many remaining jobs
        # are bisimilar, so the quotient is a counter chain.
        model = build_job_scheduling([2.0] * 3, processors=1)
        quotient, partition = ctmdp_minimize(
            model.ctmdp, labels=model.goal_mask.tolist(), respect_actions=False
        )
        assert quotient.num_states == 4  # 0..3 jobs remaining

    def test_quotient_preserves_reachability(self):
        model = build_job_scheduling([0.5, 1.0, 4.0], processors=2)
        quotient, partition = ctmdp_minimize(
            model.ctmdp, labels=model.goal_mask.tolist()
        )
        goal_q = np.array(
            map_labels_through(partition, model.goal_mask.tolist()), dtype=bool
        )
        for objective in ("max", "min"):
            for t in (0.5, 2.0):
                full = timed_reachability(
                    model.ctmdp, model.goal_mask, t, epsilon=1e-9, objective=objective
                ).value(model.ctmdp.initial)
                reduced = timed_reachability(
                    quotient, goal_q, t, epsilon=1e-9, objective=objective
                ).value(quotient.initial)
                assert reduced == pytest.approx(full, abs=1e-9)

    def test_respects_labels(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {0: 1.0}), (1, "a", {1: 1.0})]
        )
        assert ctmdp_bisimulation(ctmdp).num_blocks == 1
        assert ctmdp_bisimulation(ctmdp, labels=["x", "y"]).num_blocks == 2

    def test_action_labels_distinguish_unless_disabled(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {0: 1.0}), (1, "b", {1: 1.0})]
        )
        assert ctmdp_bisimulation(ctmdp).num_blocks == 2
        assert ctmdp_bisimulation(ctmdp, respect_actions=False).num_blocks == 1

    def test_quotient_of_minimal_model_is_identity(self):
        ctmdp, goal = two_phase_race_ctmdp()
        quotient, _ = ctmdp_minimize(ctmdp, labels=goal.tolist())
        assert quotient.num_states == ctmdp.num_states


class TestEquivalence:
    def test_reflexive(self):
        ctmdp, goal = two_phase_race_ctmdp()
        assert ctmdp_equivalent(ctmdp, ctmdp, goal.tolist(), goal.tolist())

    def test_detects_rate_differences(self):
        left = CTMDP.from_transitions(1, [(0, "a", {0: 1.0})])
        right = CTMDP.from_transitions(1, [(0, "a", {0: 2.0})])
        assert not ctmdp_equivalent(left, right)

    def test_label_arity_checked(self):
        ctmdp, _ = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            ctmdp_equivalent(ctmdp, ctmdp, left_labels=[True], right_labels=None)

    def test_compositional_equals_direct_ftwc(self):
        """The paper's 'equivalent up to uniformity' check between the
        CADP route and the PRISM route, for N=1: the two generators
        build strongly bisimilar CTMDPs (up to action-label spelling)."""
        comp = build_compositional(1)
        direct = build_ctmdp(1)
        assert ctmdp_equivalent(
            comp.ctmdp,
            direct.ctmdp,
            comp.goal_mask.tolist(),
            direct.goal_mask.tolist(),
            respect_actions=False,
        )

    def test_ftwc_sizes_not_equivalent(self):
        one = build_ctmdp(1)
        two = build_ctmdp(2)
        assert not ctmdp_equivalent(
            one.ctmdp,
            two.ctmdp,
            one.goal_mask.tolist(),
            two.goal_mask.tolist(),
            respect_actions=False,
        )
