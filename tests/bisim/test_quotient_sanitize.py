"""Sanitizer checks of the quotient construction (code ``P006``).

``quotient_imc`` takes the Markov rates of the quotient from one stable
representative per block.  For a genuine bisimulation all stable
members agree; for a bogus partition the construction would silently
pick one member and produce an unsound model.  With sanitizing enabled
the agreement is verified up to the shared quantisation tolerance.
"""

import pytest

from repro.bisim.partition import Partition
from repro.bisim.quotient import quotient_imc
from repro.errors import LintError
from repro.imc.model import IMC
from repro.lint import sanitizing


def _two_state_blocks(imc: IMC) -> Partition:
    """{0, 1} in one block, everything else singleton."""
    import numpy as np

    block_of = np.arange(imc.num_states, dtype=np.int64)
    block_of[1] = 0
    return Partition(block_of=block_of).canonical()


class TestBlockRateAgreement:
    def test_disagreeing_members_rejected(self):
        # 0 and 1 carry genuinely different rates into block {2}: the
        # partition is not a bisimulation, so the quotient is refused.
        imc = IMC(num_states=3, markov=[(0, 1.0, 2), (1, 2.0, 2), (2, 1.0, 2)])
        partition = _two_state_blocks(imc)
        with sanitizing():
            with pytest.raises(LintError, match="P006"):
                quotient_imc(imc, partition, drop_inert_tau=True)

    def test_agreeing_members_pass(self):
        imc = IMC(num_states=3, markov=[(0, 1.5, 2), (1, 1.5, 2), (2, 1.0, 2)])
        partition = _two_state_blocks(imc)
        with sanitizing():
            quotient = quotient_imc(imc, partition, drop_inert_tau=True)
        assert quotient.num_states == 2

    def test_agreement_up_to_quantisation(self):
        # 0.1 + 0.2 vs 0.3: equal on the shared grid, so no diagnostic.
        imc = IMC(
            num_states=3,
            markov=[(0, 0.1, 2), (0, 0.2, 2), (1, 0.3, 2), (2, 1.0, 2)],
        )
        partition = _two_state_blocks(imc)
        with sanitizing():
            quotient = quotient_imc(imc, partition, drop_inert_tau=True)
        assert quotient.num_states == 2

    def test_disabled_sanitizer_does_not_check(self):
        imc = IMC(num_states=3, markov=[(0, 1.0, 2), (1, 2.0, 2), (2, 1.0, 2)])
        partition = _two_state_blocks(imc)
        # Without sanitizing the construction silently picks a member
        # (documented behaviour -- the check costs a full model pass).
        quotient = quotient_imc(imc, partition, drop_inert_tau=True)
        assert quotient.num_states == 2

    def test_unstable_members_are_exempt(self):
        # 1 is unstable (outgoing tau): its rates are behaviourally
        # irrelevant under maximal progress and must not be compared.
        from repro.imc.model import TAU

        imc = IMC(
            num_states=3,
            interactive=[(1, TAU, 2)],
            markov=[(0, 1.0, 2), (1, 99.0, 2), (2, 1.0, 2)],
        )
        partition = _two_state_blocks(imc)
        with sanitizing():
            quotient_imc(imc, partition, drop_inert_tau=True)
