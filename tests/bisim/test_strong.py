"""Tests for strong stochastic bisimulation."""

import pytest
from hypothesis import given, settings

from repro.bisim.strong import strong_bisimulation, strong_minimize
from repro.bisim.branching import branching_bisimulation
from repro.imc.model import IMC, TAU
from tests.conftest import random_imcs, random_uniform_imcs


class TestBasics:
    def test_tau_not_abstracted(self):
        # Strong bisimulation treats tau like any action: a state with a
        # tau step is not equivalent to its target.
        imc = IMC(num_states=2, interactive=[(0, TAU, 1)], markov=[(1, 2.0, 1)])
        assert strong_bisimulation(imc).num_blocks == 2

    def test_identical_branching_merges(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, "a", 2), (1, "a", 2)],
            markov=[(2, 1.0, 0), (2, 1.0, 1)],
        )
        partition = strong_bisimulation(imc)
        assert partition.same_block(0, 1)

    def test_rates_of_unstable_states_irrelevant(self):
        # Maximal progress: both states have tau to 2, their differing
        # rates never fire.
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 2), (1, TAU, 2)],
            markov=[(0, 1.0, 2), (1, 99.0, 2), (2, 1.0, 2)],
        )
        partition = strong_bisimulation(imc)
        assert partition.same_block(0, 1)

    def test_rates_of_stable_states_matter(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 0), (1, 2.0, 1)])
        assert strong_bisimulation(imc).num_blocks == 2

    def test_labels_respected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 0), (1, 1.0, 1)])
        assert strong_bisimulation(imc).num_blocks == 1
        assert strong_bisimulation(imc, labels=["x", "y"]).num_blocks == 2

    def test_quotient_structure(self):
        imc = IMC(
            num_states=4,
            interactive=[(0, "a", 1), (0, "a", 2)],
            markov=[(1, 2.0, 3), (2, 2.0, 3), (3, 1.0, 3)],
        )
        quotient, partition = strong_minimize(imc)
        assert partition.same_block(1, 2)
        assert quotient.num_states == 3
        # The two a-edges collapse into one.
        assert len(quotient.interactive) == 1


class TestRelationToBranching:
    @given(imc=random_imcs())
    @settings(max_examples=50, deadline=None)
    def test_strong_refines_branching(self, imc):
        strong = strong_bisimulation(imc)
        branching = branching_bisimulation(imc)
        assert strong.is_refinement_of(branching)

    @given(imc=random_uniform_imcs())
    @settings(max_examples=40, deadline=None)
    def test_strong_quotient_preserves_uniformity(self, imc):
        quotient, _ = strong_minimize(imc)
        assert quotient.is_uniform()
