"""Regression tests for the float-robust rate signatures.

The original ``_rate_signature`` summed Markov contributions in list
order and quantised with ``round(rate, 12)`` -- an *absolute* decimal
grid.  Both choices are wrong in well-known ways:

* plain left-to-right addition is order-dependent, so two states with
  the same multiset of rates could land on different sums;
* ``round(x, 12)`` stops distinguishing anything once ``x`` is large,
  and two equal-up-to-ulp sums straddling a decimal rounding boundary
  quantise apart, splitting blocks Definition 6 says must merge.

These tests pin the shared replacement in ``repro.bisim.signatures``:
sorted ``fsum`` accumulation plus relative (mantissa-grid) quantisation,
with the scalar and vectorised paths bitwise identical.
"""

import math
import random

import numpy as np
import pytest

from repro.bisim.branching import branching_bisimulation
from repro.bisim.lumping import lumping_partition
from repro.bisim.signatures import (
    quantize_rate,
    quantize_rates,
    rate_signature,
    stable_rate_sum,
)
from repro.bisim.strong import strong_bisimulation
from repro.ctmc.model import CTMC
from repro.imc.model import IMC


class TestQuantizeRate:
    def test_merges_float_noise(self):
        assert quantize_rate(0.1 + 0.2) == quantize_rate(0.3)

    def test_merges_float_noise_at_large_magnitude(self):
        # round(x, 12) genuinely fails here: the absolute grid is finer
        # than an ulp at this magnitude, so the two sums quantise apart.
        assert round(10000.1 + 0.2, 12) != round(10000.3, 12)
        assert quantize_rate(10000.1 + 0.2) == quantize_rate(10000.3)

    def test_merges_float_noise_at_tiny_magnitude(self):
        a = 1e-12 + 2e-12
        assert quantize_rate(a) == quantize_rate(3e-12)

    def test_keeps_genuinely_different_rates_apart(self):
        assert quantize_rate(1.0) != quantize_rate(1.0 + 1e-6)
        assert quantize_rate(2.0) != quantize_rate(2.5)

    def test_zero_and_sign(self):
        assert quantize_rate(0.0) == 0.0
        assert quantize_rate(-0.3) == -quantize_rate(0.3)

    def test_scalar_and_vector_paths_bitwise_identical(self):
        values = [
            0.3,
            0.1 + 0.2,
            1e-12,
            0.5 - 1e-12,
            0.5 + 1e-12,
            1.0 / 3.0,
            0.9999999999999999,
            10000.1 + 0.2,
            4.0,
            2.5e300,
            7e-300,
        ]
        vectorised = quantize_rates(np.array(values))
        for value, vec in zip(values, vectorised):
            assert quantize_rate(value) == vec  # exact, not approx

    def test_vector_path_random_fuzz(self):
        rng = random.Random(1207)
        values = np.array(
            [math.ldexp(rng.random() + 0.5, rng.randint(-80, 80)) for _ in range(500)]
        )
        np.testing.assert_array_equal(
            quantize_rates(values), [quantize_rate(v) for v in values]
        )


class TestStableRateSum:
    def test_order_independent(self):
        contributions = [0.1, 0.2, 0.3, 1e-9, 4.0, 0.7]
        reference = stable_rate_sum(contributions)
        rng = random.Random(42)
        for _ in range(20):
            shuffled = contributions[:]
            rng.shuffle(shuffled)
            assert stable_rate_sum(shuffled) == reference

    def test_exact_where_fsum_is(self):
        # fsum is exactly correct; naive addition is not.
        assert stable_rate_sum([0.1] * 10) == 1.0


class TestRateSignature:
    def test_groups_by_block(self):
        sig = rate_signature([(0, 1.0), (1, 2.0), (0, 0.5)])
        assert sig == frozenset({(0, quantize_rate(1.5)), (1, quantize_rate(2.0))})

    def test_order_of_contributions_irrelevant(self):
        pairs = [(0, 0.1), (1, 0.7), (0, 0.2), (1, 0.3), (0, 0.3)]
        rng = random.Random(9)
        reference = rate_signature(pairs)
        for _ in range(10):
            shuffled = pairs[:]
            rng.shuffle(shuffled)
            assert rate_signature(shuffled) == reference

    def test_sum_straddling_decimal_boundary(self):
        # 0.1 + 0.2 == 0.30000000000000004 != 0.3: the same cumulative
        # rate written as one transition or as two must sign equal.
        assert rate_signature([(0, 0.1), (0, 0.2)]) == rate_signature([(0, 0.3)])


class TestBisimulationRegressions:
    """End-to-end: equal cumulative rates merge despite float noise."""

    def test_branching_merges_split_vs_single_rate(self):
        # States 1 and 2 both move to block {3} with total rate 0.3,
        # once as 0.1 + 0.2 and once as a single 0.3 transition.
        imc = IMC(
            num_states=4,
            markov=[(1, 0.1, 3), (1, 0.2, 3), (2, 0.3, 3), (3, 0.3, 3)],
            interactive=[(0, "a", 1), (0, "a", 2)],
        )
        partition = branching_bisimulation(imc)
        assert partition.same_block(1, 2)

    def test_branching_merges_at_large_magnitude(self):
        imc = IMC(
            num_states=3,
            markov=[(0, 10000.1, 2), (0, 0.2, 2), (1, 10000.3, 2), (2, 1.0, 2)],
        )
        assert branching_bisimulation(imc).same_block(0, 1)

    def test_strong_uses_shared_quantisation(self):
        imc = IMC(
            num_states=3,
            markov=[(0, 0.1, 2), (0, 0.2, 2), (1, 0.3, 2), (2, 1.0, 2)],
        )
        assert strong_bisimulation(imc).same_block(0, 1)

    def test_lumping_uses_shared_quantisation(self):
        ctmc = CTMC.from_transitions(
            3, [(0, 2, 0.1), (0, 2, 0.2), (1, 2, 0.3), (2, 2, 1.0)]
        )
        assert lumping_partition(ctmc).same_block(0, 1)

    def test_genuinely_different_rates_still_split(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 0), (1, 2.0, 1)])
        assert branching_bisimulation(imc).num_blocks == 2
