"""Tests for ordinary CTMC lumping."""

import numpy as np
import pytest

from repro.bisim.lumping import lump, lumping_partition
from repro.ctmc.model import CTMC
from repro.ctmc.uniformization import transient_distribution


class TestLumping:
    def test_symmetric_states_lump(self):
        # Star: 0 -> {1, 2} symmetric, both back to 0.
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.0), (0, 2, 1.0), (1, 0, 3.0), (2, 0, 3.0)]
        )
        lumped, partition = lump(chain)
        assert partition.same_block(1, 2)
        assert lumped.num_states == 2
        assert lumped.rate(0, 1) == pytest.approx(2.0)

    def test_asymmetric_states_do_not_lump(self):
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.0), (0, 2, 1.0), (1, 0, 3.0), (2, 0, 4.0)]
        )
        _lumped, partition = lump(chain)
        assert not partition.same_block(1, 2)

    def test_labels_respected(self):
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.0), (0, 2, 1.0), (1, 0, 3.0), (2, 0, 3.0)]
        )
        _lumped, partition = lump(chain, labels=["i", "a", "b"])
        assert not partition.same_block(1, 2)

    def test_lumped_transients_project_correctly(self):
        chain = CTMC.from_transitions(
            4,
            [
                (0, 1, 1.0),
                (0, 2, 1.0),
                (1, 3, 2.0),
                (2, 3, 2.0),
                (3, 0, 0.5),
            ],
        )
        lumped, partition = lump(chain)
        canon = partition.canonical()
        for t in (0.3, 1.0, 5.0):
            full = transient_distribution(chain, t, epsilon=1e-12)
            reduced = transient_distribution(lumped, t, epsilon=1e-12)
            aggregated = np.zeros(lumped.num_states)
            for state, probability in enumerate(full):
                aggregated[int(canon.block_of[state])] += probability
            np.testing.assert_allclose(aggregated, reduced, atol=1e-9)

    def test_uniform_chain_stays_uniform(self):
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.0), (0, 0, 1.0), (1, 0, 1.0), (1, 1, 1.0), (2, 0, 2.0)]
        )
        assert chain.is_uniform()
        lumped, _ = lump(chain)
        assert lumped.is_uniform()

    def test_self_loop_rates_respected(self):
        # Identical exit structure but different self-loop rates: the
        # strict variant distinguishes them.
        chain = CTMC.from_transitions(
            3, [(0, 2, 1.0), (1, 2, 1.0), (0, 0, 5.0), (2, 1, 1.0)]
        )
        partition = lumping_partition(chain)
        assert not partition.same_block(0, 1)
