"""Tests for the partition-refinement machinery."""

import numpy as np
import pytest

from repro.bisim.partition import Partition, refine_to_fixpoint
from repro.errors import ConvergenceError


class TestConstruction:
    def test_trivial(self):
        p = Partition.trivial(4)
        assert p.num_blocks == 1
        assert p.num_states == 4

    def test_discrete(self):
        p = Partition.discrete(3)
        assert p.num_blocks == 3

    def test_from_labels(self):
        p = Partition.from_labels(["x", "y", "x", "z"])
        assert p.num_blocks == 3
        assert p.same_block(0, 2)
        assert not p.same_block(0, 1)


class TestOperations:
    def test_canonical_renumbers_by_first_occurrence(self):
        p = Partition(block_of=np.array([5, 2, 5, 9]))
        canon = p.canonical()
        np.testing.assert_array_equal(canon.block_of, [0, 1, 0, 2])

    def test_refined_by_splits(self):
        p = Partition.trivial(4)
        refined = p.refined_by(["a", "b", "a", "b"])
        assert refined.num_blocks == 2
        assert refined.same_block(0, 2)
        assert refined.same_block(1, 3)

    def test_refined_by_respects_existing_blocks(self):
        p = Partition.from_labels([0, 0, 1, 1])
        refined = p.refined_by(["x", "x", "x", "x"])
        assert refined.num_blocks == 2  # no merging across blocks

    def test_blocks_listing(self):
        p = Partition.from_labels(["a", "b", "a"])
        assert p.blocks() == [[0, 2], [1]]

    def test_is_refinement_of(self):
        coarse = Partition.from_labels([0, 0, 1, 1])
        fine = Partition.from_labels([0, 1, 2, 2])
        assert fine.is_refinement_of(coarse)
        assert not coarse.is_refinement_of(fine)
        assert coarse.is_refinement_of(coarse)

    def test_equality_modulo_renumbering(self):
        a = Partition(block_of=np.array([0, 1, 0]))
        b = Partition(block_of=np.array([7, 3, 7]))
        assert a == b


class TestFixpoint:
    def test_converges(self):
        # Signature = parity of state id, stable after one round.
        result = refine_to_fixpoint(
            Partition.trivial(6), lambda p: [s % 2 for s in range(6)]
        )
        assert result.num_blocks == 2

    def test_partition_dependent_signature(self):
        # Chain 0 -> 1 -> 2 -> 3 (by successor block): refines to singletons
        # when the signature exposes the successor's block.
        succ = {0: 1, 1: 2, 2: 3, 3: 3}

        def signature(p: Partition):
            return [(int(p.block_of[succ[s]]), s == 3) for s in range(4)]

        result = refine_to_fixpoint(Partition.trivial(4), signature)
        assert result.num_blocks == 4

    def test_respects_initial_partition(self):
        initial = Partition.from_labels(["a", "b", "a"])
        result = refine_to_fixpoint(initial, lambda p: [0, 0, 0])
        assert result.is_refinement_of(initial)
        assert result.num_blocks == 2


class TestConvergenceBound:
    """``max_rounds`` exhaustion must not silently return a non-fixpoint."""

    @staticmethod
    def _chain_signature(p: Partition):
        # Chain 0 -> 1 -> 2 -> 3: needs three rounds to reach singletons.
        succ = {0: 1, 1: 2, 2: 3, 3: 3}
        return [(int(p.block_of[succ[s]]), s == 3) for s in range(4)]

    def test_raises_when_bound_exhausted_before_fixpoint(self):
        with pytest.raises(ConvergenceError, match="did not reach its fixpoint"):
            refine_to_fixpoint(
                Partition.trivial(4), self._chain_signature, max_rounds=1
            )

    def test_allow_unconverged_returns_partial_refinement(self):
        partial = refine_to_fixpoint(
            Partition.trivial(4),
            self._chain_signature,
            max_rounds=1,
            allow_unconverged=True,
        )
        # One round of the chain splits off state 3 only: not the fixpoint.
        assert partial.num_blocks < 4

    def test_sufficient_bound_converges_normally(self):
        result = refine_to_fixpoint(
            Partition.trivial(4), self._chain_signature, max_rounds=4
        )
        assert result.num_blocks == 4

    def test_default_bound_never_triggers(self):
        # n + 1 rounds always suffice: each non-final round adds a block.
        result = refine_to_fixpoint(Partition.trivial(6), lambda p: [0] * 6)
        assert result.num_blocks == 1
