"""Tests for IMC equivalence checking (disjoint-union bisimilarity)."""

import pytest

from repro.bisim.branching import branching_minimize
from repro.bisim.compare import (
    are_branching_bisimilar,
    are_strongly_bisimilar,
    disjoint_union,
)
from repro.errors import ModelError
from repro.imc.model import IMC, TAU
from tests.conftest import random_imcs
from hypothesis import given, settings


class TestDisjointUnion:
    def test_sizes_and_initials(self):
        left = IMC(num_states=2, markov=[(0, 1.0, 1)])
        right = IMC(num_states=3, interactive=[(0, "a", 1)], initial=0)
        union, init_left, init_right = disjoint_union(left, right)
        assert union.num_states == 5
        assert init_left == 0
        assert init_right == 2
        assert union.initial == init_left

    def test_no_cross_transitions(self):
        left = IMC(num_states=2, markov=[(0, 1.0, 1)])
        right = IMC(num_states=2, interactive=[(0, "a", 1)])
        union, _, _ = disjoint_union(left, right)
        for s, _a, t in union.interactive:
            assert (s < 2) == (t < 2)
        for s, _r, t in union.markov:
            assert (s < 2) == (t < 2)


class TestBranchingEquivalence:
    def test_model_bisimilar_to_its_quotient(self):
        imc = IMC(
            num_states=4,
            interactive=[(0, TAU, 1)],
            markov=[(1, 2.0, 2), (1, 2.0, 3), (2, 1.0, 1), (3, 1.0, 1)],
        )
        quotient, _ = branching_minimize(imc)
        assert are_branching_bisimilar(imc, quotient)

    def test_different_rates_not_bisimilar(self):
        left = IMC(num_states=1, markov=[(0, 1.0, 0)])
        right = IMC(num_states=1, markov=[(0, 2.0, 0)])
        assert not are_branching_bisimilar(left, right)

    def test_tau_padding_is_invisible(self):
        plain = IMC(num_states=2, markov=[(0, 3.0, 1), (1, 3.0, 0)])
        padded = IMC(
            num_states=3,
            interactive=[(1, TAU, 2)],
            markov=[(0, 3.0, 1), (2, 3.0, 0)],
        )
        assert are_branching_bisimilar(plain, padded)
        assert not are_strongly_bisimilar(plain, padded)

    def test_labels_respected(self):
        left = IMC(num_states=1, markov=[(0, 1.0, 0)])
        right = IMC(num_states=1, markov=[(0, 1.0, 0)])
        assert are_branching_bisimilar(left, right)
        assert not are_branching_bisimilar(
            left, right, left_labels=["x"], right_labels=["y"]
        )

    def test_label_arity_checked(self):
        left = IMC(num_states=1, markov=[(0, 1.0, 0)])
        with pytest.raises(ModelError):
            are_branching_bisimilar(left, left, left_labels=["x"], right_labels=None)
        with pytest.raises(ModelError):
            are_branching_bisimilar(left, left, left_labels=["x", "y"], right_labels=["x"])

    @given(imc=random_imcs())
    @settings(max_examples=40, deadline=None)
    def test_reflexive(self, imc):
        assert are_branching_bisimilar(imc, imc)
        assert are_strongly_bisimilar(imc, imc)
