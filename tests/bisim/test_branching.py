"""Tests for stochastic branching bisimulation (Definition 6, Lemma 3)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.bisim.branching import (
    branching_bisimulation,
    branching_minimize,
    is_stochastic_branching_bisimulation,
)
from repro.core.reachability import timed_reachability
from repro.imc.model import IMC, TAU
from repro.imc.transform import imc_to_ctmdp
from tests.conftest import random_imcs, random_closed_uniform_imcs, random_uniform_imcs


class TestBasics:
    def test_inert_tau_collapses(self):
        # 0 -tau-> 1, both leading (1 stochastically) to the same future.
        imc = IMC(
            num_states=2,
            interactive=[(0, TAU, 1)],
            markov=[(1, 2.0, 1)],
        )
        quotient, partition = branching_minimize(imc)
        assert partition.num_blocks == 1
        assert quotient.num_states == 1
        # The inert tau disappears; the Markov self-loop remains.
        assert quotient.interactive == []
        assert quotient.markov == [(0, 2.0, 0)]

    def test_visible_actions_not_collapsed(self):
        imc = IMC(num_states=2, interactive=[(0, "a", 1), (1, "a", 0)])
        _quotient, partition = branching_bisimulation(imc), None
        # a-loop states are bisimilar (same behaviour), so one block.
        assert branching_bisimulation(imc).num_blocks == 1

    def test_different_rates_split(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 0), (1, 2.0, 1)])
        assert branching_bisimulation(imc).num_blocks == 2

    def test_symmetric_interleaving_lumps(self):
        # Two interleaved independent clocks with equal rates: states
        # (1 fired, 0 fired) in either order are equivalent.
        imc = IMC(
            num_states=4,
            markov=[(0, 1.0, 1), (0, 1.0, 2), (1, 1.0, 3), (2, 1.0, 3), (3, 4.0, 0)],
        )
        partition = branching_bisimulation(imc)
        assert partition.same_block(1, 2)
        assert partition.num_blocks == 3

    def test_labels_prevent_merging(self):
        imc = IMC(
            num_states=4,
            markov=[(0, 1.0, 1), (0, 1.0, 2), (1, 1.0, 3), (2, 1.0, 3), (3, 4.0, 0)],
        )
        partition = branching_bisimulation(imc, labels=["x", "y", "z", "w"])
        assert partition.num_blocks == 4

    def test_rate_lumping_accumulates(self):
        # 0 goes to 1 and 2 (rate 1 each) which are equivalent: the
        # quotient transition carries rate 2.
        imc = IMC(
            num_states=3,
            markov=[(0, 1.0, 1), (0, 1.0, 2), (1, 3.0, 1), (2, 3.0, 2)],
        )
        quotient, partition = branching_minimize(imc)
        assert partition.same_block(1, 2)
        block_of_0 = int(partition.canonical().block_of[0])
        outgoing = [r for s, r, t in quotient.markov if s == block_of_0 and t != block_of_0]
        assert outgoing == [pytest.approx(2.0)]


class TestDefinitionCompliance:
    @given(imc=random_imcs())
    @settings(max_examples=60, deadline=None)
    def test_fixpoint_is_a_bisimulation(self, imc):
        partition = branching_bisimulation(imc)
        assert is_stochastic_branching_bisimulation(imc, partition)

    @given(imc=random_imcs())
    @settings(max_examples=40, deadline=None)
    def test_discrete_partition_is_finer(self, imc):
        partition = branching_bisimulation(imc)
        from repro.bisim.partition import Partition

        assert Partition.discrete(imc.num_states).is_refinement_of(partition)

    def test_checker_rejects_bad_partition(self):
        from repro.bisim.partition import Partition

        imc = IMC(num_states=2, markov=[(0, 1.0, 0), (1, 9.0, 1)])
        bad = Partition.trivial(2)
        assert not is_stochastic_branching_bisimulation(imc, bad)


class TestLemma3:
    @given(imc=random_uniform_imcs())
    @settings(max_examples=40, deadline=None)
    def test_quotient_preserves_uniformity(self, imc):
        assert imc.is_uniform()
        quotient, _partition = branching_minimize(imc)
        assert quotient.is_uniform()

    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=25, deadline=None)
    def test_quotient_preserves_timed_reachability(self, imc):
        """Corollary of Theorem 1 + Lemma 3: analysing the quotient gives
        the same worst-case probabilities as analysing the original."""
        labels = [s == imc.num_states - 1 for s in range(imc.num_states)]
        quotient, partition = branching_minimize(imc, labels=labels)
        canon = partition.canonical()

        original = imc_to_ctmdp(imc)
        goal_original = original.goal_mask_from_predicate(
            lambda s: labels[s], via="markov"
        )
        reduced = imc_to_ctmdp(quotient)
        from repro.bisim.quotient import map_labels_through

        quotient_labels = map_labels_through(partition, labels)
        goal_reduced = reduced.goal_mask_from_predicate(
            lambda s: quotient_labels[s], via="markov"
        )
        for t in (0.5, 2.0):
            value_original = timed_reachability(
                original.ctmdp, goal_original, t, epsilon=1e-9
            ).value(original.ctmdp.initial)
            value_reduced = timed_reachability(
                reduced.ctmdp, goal_reduced, t, epsilon=1e-9
            ).value(reduced.ctmdp.initial)
            assert value_reduced == pytest.approx(value_original, abs=1e-7)
