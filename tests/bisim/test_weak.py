"""Tests for stochastic weak bisimulation."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.bisim.branching import branching_bisimulation
from repro.bisim.quotient import map_labels_through
from repro.bisim.weak import weak_bisimulation, weak_minimize
from repro.core.reachability import timed_reachability
from repro.imc.model import IMC, TAU
from repro.imc.transform import imc_to_ctmdp
from tests.conftest import random_closed_uniform_imcs, random_uniform_imcs


class TestBasics:
    def test_tau_chain_collapses(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1), (1, TAU, 2)],
            markov=[(2, 2.0, 2)],
        )
        partition = weak_bisimulation(imc)
        assert partition.num_blocks == 1

    def test_weak_move_through_tau(self):
        # 0 -tau-> 1 -a-> 2  versus  3 -a-> 2: weakly bisimilar sources.
        imc = IMC(
            num_states=4,
            interactive=[(0, TAU, 1), (1, "a", 2), (3, "a", 2), (2, TAU, 2)],
        )
        partition = weak_bisimulation(imc)
        assert partition.same_block(0, 3)
        assert partition.same_block(0, 1)

    def test_different_rates_split(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 0), (1, 2.0, 1)])
        assert weak_bisimulation(imc).num_blocks == 2

    def test_labels_respected(self):
        imc = IMC(
            num_states=2, interactive=[(0, TAU, 1)], markov=[(1, 1.0, 1)]
        )
        assert weak_bisimulation(imc).num_blocks == 1
        assert weak_bisimulation(imc, labels=["x", "y"]).num_blocks == 2


class TestRelationToBranching:
    @given(imc=random_uniform_imcs())
    @settings(max_examples=40, deadline=None)
    def test_branching_equivalent_states_stay_together(self, imc):
        """Branching bisimilarity implies (exact-rate) weak
        bisimilarity, so every branching block must sit inside some weak
        block whenever both refinements reach their fixpoints on the
        same seeds."""
        branching = branching_bisimulation(imc)
        weak = weak_bisimulation(imc)
        # Weak merges at least as much as branching on these models.
        assert weak.num_blocks <= branching.num_blocks

    def test_weak_coarser_on_tau_divergence_free_chain(self):
        imc = IMC(
            num_states=4,
            interactive=[(0, TAU, 1), (1, "a", 2), (2, TAU, 3)],
            markov=[(3, 1.0, 3)],
        )
        weak = weak_bisimulation(imc)
        branching = branching_bisimulation(imc)
        assert weak.num_blocks <= branching.num_blocks


class TestLemma3Analogue:
    @given(imc=random_uniform_imcs())
    @settings(max_examples=40, deadline=None)
    def test_quotient_preserves_uniformity(self, imc):
        assert imc.is_uniform()
        quotient, _ = weak_minimize(imc)
        assert quotient.is_uniform()

    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=20, deadline=None)
    def test_quotient_preserves_timed_reachability(self, imc):
        labels = [s == imc.num_states - 1 for s in range(imc.num_states)]
        quotient, partition = weak_minimize(imc, labels=labels)
        quotient_labels = map_labels_through(partition, labels)

        original = imc_to_ctmdp(imc)
        reduced = imc_to_ctmdp(quotient)
        goal_original = original.goal_mask_from_predicate(lambda s: labels[s])
        goal_reduced = reduced.goal_mask_from_predicate(lambda s: quotient_labels[s])
        for t in (0.5, 2.0):
            value_original = timed_reachability(
                original.ctmdp, goal_original, t, epsilon=1e-9
            ).value(original.ctmdp.initial)
            value_reduced = timed_reachability(
                reduced.ctmdp, goal_reduced, t, epsilon=1e-9
            ).value(reduced.ctmdp.initial)
            assert value_reduced == pytest.approx(value_original, abs=1e-7)
