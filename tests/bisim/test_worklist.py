"""Property tests for the worklist refinement engine.

The engine of :mod:`repro.bisim.worklist` must compute exactly the
partition of the naive signature engine -- the two are cross-checked
here on random IMCs (with and without label seeding), on the tau-heavy
models the compositional pipeline produces, and on the FTWC itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.bisim.branching import (
    ENGINES,
    branching_bisimulation,
    branching_minimize,
    is_stochastic_branching_bisimulation,
)
from repro.errors import ModelError
from repro.imc.model import IMC, TAU
from repro.obs import MetricStore
from tests.conftest import random_imcs, random_uniform_imcs


class TestEngineEquality:
    @given(imc=random_imcs(max_states=8, max_interactive=12, max_markov=12))
    @settings(max_examples=120, deadline=None)
    def test_engines_agree_on_random_imcs(self, imc):
        worklist = branching_bisimulation(imc, engine="worklist")
        naive = branching_bisimulation(imc, engine="naive")
        np.testing.assert_array_equal(worklist.block_of, naive.block_of)

    @given(imc=random_imcs(max_states=8, max_interactive=12, max_markov=12))
    @settings(max_examples=60, deadline=None)
    def test_engines_agree_with_label_seeding(self, imc):
        labels = [s % 2 for s in range(imc.num_states)]
        worklist = branching_bisimulation(imc, labels=labels, engine="worklist")
        naive = branching_bisimulation(imc, labels=labels, engine="naive")
        np.testing.assert_array_equal(worklist.block_of, naive.block_of)

    @given(imc=random_uniform_imcs())
    @settings(max_examples=60, deadline=None)
    def test_engines_agree_on_uniform_imcs(self, imc):
        worklist = branching_bisimulation(imc, engine="worklist")
        naive = branching_bisimulation(imc, engine="naive")
        np.testing.assert_array_equal(worklist.block_of, naive.block_of)

    def test_engines_agree_on_ftwc(self):
        from repro.models.ftwc import build_system_imc

        worklist = build_system_imc(1, minimize_intermediate=True, engine="worklist")
        naive = build_system_imc(1, minimize_intermediate=True, engine="naive")
        assert worklist.imc.num_states == naive.imc.num_states
        assert worklist.premium_flags == naive.premium_flags
        assert sorted(worklist.imc.interactive) == sorted(naive.imc.interactive)
        assert sorted(worklist.imc.markov) == sorted(naive.imc.markov)


class TestFixpointProperties:
    @given(imc=random_imcs(max_states=7))
    @settings(max_examples=60, deadline=None)
    def test_worklist_fixpoint_is_a_bisimulation(self, imc):
        partition = branching_bisimulation(imc, engine="worklist")
        assert is_stochastic_branching_bisimulation(imc, partition)

    @given(imc=random_imcs(max_states=7))
    @settings(max_examples=40, deadline=None)
    def test_minimize_is_idempotent(self, imc):
        quotient, _ = branching_minimize(imc, engine="worklist")
        again, partition = branching_minimize(quotient, engine="worklist")
        assert again.num_states == quotient.num_states
        assert partition.num_blocks == quotient.num_states

    @given(imc=random_imcs(max_states=7))
    @settings(max_examples=40, deadline=None)
    def test_labels_are_respected(self, imc):
        labels = [s % 3 for s in range(imc.num_states)]
        partition = branching_bisimulation(imc, labels=labels, engine="worklist")
        for block in partition.canonical().blocks():
            assert len({labels[s] for s in block}) == 1


class TestEdgeCases:
    def test_single_state(self):
        imc = IMC(num_states=1, markov=[(0, 1.0, 0)])
        assert branching_bisimulation(imc, engine="worklist").num_blocks == 1

    def test_no_transitions(self):
        imc = IMC(num_states=3)
        assert branching_bisimulation(imc, engine="worklist").num_blocks == 1

    def test_tau_cycle_collapses(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1), (1, TAU, 2), (2, TAU, 0)],
        )
        assert branching_bisimulation(imc, engine="worklist").num_blocks == 1

    def test_deep_inert_tau_chain(self):
        # Signature propagation must cross long inert chains: only the
        # last state carries a visible move, yet the whole chain can
        # reach it through inert tau steps, so everything merges.
        n = 30
        interactive = [(s, TAU, s + 1) for s in range(n - 1)]
        interactive.append((n - 1, "a", 0))
        imc = IMC(num_states=n, interactive=interactive)
        worklist = branching_bisimulation(imc, engine="worklist")
        naive = branching_bisimulation(imc, engine="naive")
        np.testing.assert_array_equal(worklist.block_of, naive.block_of)
        assert worklist.num_blocks == 1

    def test_unknown_engine_rejected(self):
        imc = IMC(num_states=1)
        with pytest.raises(ModelError, match="unknown refinement engine"):
            branching_bisimulation(imc, engine="fancy")
        assert set(ENGINES) == {"worklist", "naive"}


class TestObservability:
    def test_counters_are_recorded(self):
        metrics = MetricStore()
        imc = IMC(
            num_states=4,
            markov=[(0, 1.0, 1), (0, 1.0, 2), (1, 1.0, 3), (2, 1.0, 3), (3, 4.0, 0)],
        )
        branching_minimize(imc, engine="worklist", metrics=metrics)
        assert metrics.counter("bisim_minimize_calls") == 1
        assert metrics.counter("bisim_rounds") >= 1
        assert metrics.counter("bisim_splits") >= 1
        assert metrics.counter("bisim_states_rescanned") >= imc.num_states
        assert metrics.counter("bisim_states_eliminated") == 1
