"""Ledger trend analysis: parsing, direction heuristics, regression gates."""

import json

import pytest

from repro.bench import (
    LedgerError,
    analyze_ledgers,
    flatten_run,
    load_ledger,
    metric_direction,
)


def _ledger(path, benchmark, runs):
    path.write_text(
        json.dumps({"benchmark": benchmark, "runs": runs}), encoding="utf-8"
    )
    return path


def _run(commit, recorded_at, **metrics):
    return {"commit": commit, "recorded_at": recorded_at, **metrics}


class TestDirections:
    @pytest.mark.parametrize(
        ("name", "direction"),
        [
            ("scrape.p50_seconds", "lower"),
            ("build_seconds", "lower"),
            ("speedup", "higher"),
            ("replay.events_per_second", "higher"),
            ("ftwc.compression_ratio", "higher"),
            ("overhead_ratio", "lower"),
            ("streaming_vs_dense_ratio", "lower"),
            ("states", None),
            ("value", None),
        ],
    )
    def test_known_directions(self, name, direction):
        assert metric_direction(name) == direction


class TestFlatten:
    def test_nested_numeric_leaves_dotted(self):
        run = _run(
            "abc1234",
            "2026-01-01T00:00:00+00:00",
            scrape={"p50_seconds": 0.001, "label": "hot"},
            speedup=2.0,
            ok=True,
        )
        flat = flatten_run(run)
        assert flat == {"scrape.p50_seconds": 0.001, "speedup": 2.0}

    def test_provenance_and_config_skipped(self):
        flat = flatten_run(
            {"commit": "x", "recorded_at": "t", "budget": 5, "kind": "a", "n": 7}
        )
        assert flat == {"n": 7}


class TestLoadLedger:
    def test_legacy_unstamped_entry_orders_first(self, tmp_path):
        path = _ledger(
            tmp_path / "BENCH_x.json",
            "x",
            [
                _run("bbb", "2026-01-02T00:00:00+00:00", solve_seconds=2.0),
                {"commit": "unknown", "recorded_at": None, "solve_seconds": 1.0},
                _run("aaa", "2026-01-01T00:00:00+00:00", solve_seconds=1.5),
            ],
        )
        _name, runs = load_ledger(path)
        assert [run["commit"] for run in runs] == ["unknown", "aaa", "bbb"]

    def test_pre_ledger_document_becomes_single_run(self, tmp_path):
        path = tmp_path / "BENCH_old.json"
        path.write_text(json.dumps({"benchmark": "old", "solve_seconds": 3.0}))
        name, runs = load_ledger(path)
        assert name == "old"
        assert runs == [
            {"solve_seconds": 3.0, "commit": "unknown", "recorded_at": None}
        ]

    @pytest.mark.parametrize("content", ["not json", "[1, 2]", '"str"'])
    def test_unparseable_ledger_raises(self, tmp_path, content):
        path = tmp_path / "BENCH_bad.json"
        path.write_text(content)
        with pytest.raises(LedgerError):
            load_ledger(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(LedgerError):
            load_ledger(tmp_path / "BENCH_none.json")


class TestRegressionGate:
    def _series(self, tmp_path, values, metric="solve_seconds"):
        runs = [
            _run(f"c{i}", f"2026-01-0{i + 1}T00:00:00+00:00", **{metric: value})
            for i, value in enumerate(values)
        ]
        return _ledger(tmp_path / "BENCH_s.json", "s", runs)

    def test_synthetic_regression_flags_and_exits_1(self, tmp_path):
        path = self._series(tmp_path, [1.0, 1.1, 0.9, 5.0])
        report = analyze_ledgers([path], threshold=1.0)
        assert report.status == "regressed"
        assert report.exit_code() == 1
        [trend] = report.regressions
        assert trend.metric == "solve_seconds"
        assert trend.baseline == 1.0
        assert trend.latest == 5.0
        assert trend.ratio == pytest.approx(5.0)

    def test_stable_series_is_ok(self, tmp_path):
        path = self._series(tmp_path, [1.0, 1.1, 0.9, 1.05])
        report = analyze_ledgers([path], threshold=1.0)
        assert report.status == "ok"
        assert report.exit_code() == 0

    def test_higher_is_better_direction(self, tmp_path):
        path = self._series(tmp_path, [100.0, 110.0, 90.0, 10.0], metric="events_per_second")
        report = analyze_ledgers([path], threshold=1.0)
        assert report.exit_code() == 1
        [trend] = report.regressions
        assert trend.direction == "higher"

    def test_improvement_never_flags(self, tmp_path):
        path = self._series(tmp_path, [5.0, 5.0, 0.01])
        assert analyze_ledgers([path], threshold=1.0).exit_code() == 0

    def test_min_history_gates_noisy_young_series(self, tmp_path):
        path = self._series(tmp_path, [1.0, 50.0])
        report = analyze_ledgers([path], threshold=1.0, min_history=2)
        assert report.exit_code() == 0
        [trend] = report.trends
        assert trend.checked is False
        # One prior run is enough when explicitly allowed.
        assert analyze_ledgers([path], threshold=1.0, min_history=1).exit_code() == 1

    def test_informational_metrics_never_flag(self, tmp_path):
        path = self._series(tmp_path, [100.0, 100.0, 100.0, 9000.0], metric="states")
        report = analyze_ledgers([path], threshold=0.01)
        assert report.exit_code() == 0
        [trend] = report.trends
        assert trend.direction is None
        assert trend.checked is False

    def test_threshold_is_respected(self, tmp_path):
        path = self._series(tmp_path, [1.0, 1.0, 1.0, 1.5])
        assert analyze_ledgers([path], threshold=1.0).exit_code() == 0
        assert analyze_ledgers([path], threshold=0.2).exit_code() == 1

    def test_zero_baseline_compares_by_sign(self, tmp_path):
        path = self._series(tmp_path, [0.0, 0.0, 0.0, 0.5])
        report = analyze_ledgers([path], threshold=1.0)
        assert report.exit_code() == 1
        [trend] = report.regressions
        assert trend.ratio is None

    def test_kind_field_splits_workloads(self, tmp_path):
        runs = [
            _run("c1", "2026-01-01T00:00:00+00:00", kind="plain", p50_seconds=1.0),
            _run("c2", "2026-01-02T00:00:00+00:00", kind="fleet", p50_seconds=100.0),
            _run("c3", "2026-01-03T00:00:00+00:00", kind="plain", p50_seconds=1.1),
            _run("c4", "2026-01-04T00:00:00+00:00", kind="fleet", p50_seconds=101.0),
        ]
        path = _ledger(tmp_path / "BENCH_http.json", "http", runs)
        report = analyze_ledgers([path])
        workloads = {trend.workload for trend in report.trends}
        assert workloads == {"http/plain", "http/fleet"}
        # The 100x gap between kinds never compares against each other.
        assert report.exit_code() == 0

    def test_report_as_dict_shape(self, tmp_path):
        path = self._series(tmp_path, [1.0, 1.0, 9.0])
        document = analyze_ledgers([path]).as_dict()
        assert document["status"] == "regressed"
        assert document["ledgers"] == ["BENCH_s.json"]
        [regression] = document["regressions"]
        assert regression["metric"] == "solve_seconds"
        assert [p["value"] for p in regression["points"]] == [1.0, 1.0, 9.0]

    def test_render_text_mentions_verdicts(self, tmp_path):
        path = self._series(tmp_path, [1.0, 1.0, 9.0])
        text = analyze_ledgers([path]).render_text()
        assert "REGRESSED" in text
        assert "status: regressed" in text


class TestRealLedgers:
    def test_repository_ledgers_are_clean(self, tmp_path):
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        ledgers = sorted(repo.glob("BENCH_*.json"))
        assert ledgers, "repository should carry benchmark ledgers"
        report = analyze_ledgers(ledgers)
        assert report.exit_code() == 0, [
            (t.workload, t.metric, t.ratio) for t in report.regressions
        ]


class TestLedgerStamping:
    """`benchmarks/_ledger.py` stamps are authoritative."""

    def _append_run(self):
        import importlib.util
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        spec = importlib.util.spec_from_file_location(
            "bench_ledger", repo / "benchmarks" / "_ledger.py"
        )
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)
        return module.append_run

    def test_payload_cannot_override_stamps(self, tmp_path):
        append_run = self._append_run()
        entry = append_run(
            tmp_path / "BENCH_t.json",
            "t",
            {"solve_seconds": 1.0, "commit": "forged", "recorded_at": "1999-01-01"},
        )
        assert entry["commit"] != "forged"
        assert entry["recorded_at"] != "1999-01-01"
        assert entry["recorded_at"]  # a real ISO timestamp was stamped
        assert entry["solve_seconds"] == 1.0

    def test_appended_entries_trend_chronologically(self, tmp_path):
        append_run = self._append_run()
        path = tmp_path / "BENCH_t.json"
        # A legacy pre-ledger document is absorbed as the first entry...
        path.write_text(json.dumps({"benchmark": "t", "solve_seconds": 1.0}))
        for value in (1.1, 0.9, 1.2):
            append_run(path, "t", {"solve_seconds": value})
        _name, runs = load_ledger(path)
        assert [run["solve_seconds"] for run in runs] == [1.0, 1.1, 0.9, 1.2]
        assert runs[0]["commit"] == "unknown"
        report = analyze_ledgers([path])
        assert report.exit_code() == 0
