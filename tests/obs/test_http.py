"""The HTTP telemetry server: endpoints, health verdicts, shutdown."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricStore, span, tracing
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, SpanLog, TelemetryServer


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode("utf-8")


@pytest.fixture()
def store():
    store = MetricStore()
    store.count("queries_total", 3)
    store.add_time("solve_seconds", 0.5)
    store.count("certificates_total", 3)
    store.gauge("certificate_last_error_bound", 1e-9)
    return store


class TestEndpoints:
    def test_metrics_exposition(self, store):
        with TelemetryServer(store) as server:
            status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "repro_queries_total_total 3" in body
        assert body.endswith("# EOF\n")

    def test_healthz_ok(self, store):
        with TelemetryServer(store) as server:
            status, headers, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["certificates"]["total"] == 3

    def test_healthz_degraded_is_503(self, store):
        store.count("certificates_degraded")
        with TelemetryServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/healthz", timeout=5.0)
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read())
        assert payload["status"] == "degraded"

    def test_traces_ndjson_and_limit(self, store):
        log = SpanLog()
        with tracing() as tracer:
            for index in range(5):
                with span("phase", index=index):
                    pass
        log.extend(tracer.as_dicts())
        with TelemetryServer(store, span_log=log) as server:
            _status, headers, body = _get(f"{server.url}/traces")
            assert headers["Content-Type"] == "application/x-ndjson"
            records = [json.loads(line) for line in body.splitlines()]
            assert len(records) == 5
            assert all(record["name"] == "phase" for record in records)
            assert all(record["trace_id"] == tracer.trace_id for record in records)

            _status, _headers, tail = _get(f"{server.url}/traces?limit=2")
            tail_records = [json.loads(line) for line in tail.splitlines()]
            assert [r["attributes"]["index"] for r in tail_records] == [3, 4]

    def test_traces_empty_log(self, store):
        with TelemetryServer(store) as server:
            status, _headers, body = _get(f"{server.url}/traces")
        assert status == 200
        assert body == ""

    def test_unknown_path_is_404(self, store):
        with TelemetryServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5.0)
        assert excinfo.value.code == 404


class TestLifecycle:
    def test_ephemeral_port_resolved(self, store):
        server = TelemetryServer(store, port=0)
        try:
            assert server.port > 0
            assert str(server.port) in server.url
        finally:
            server.stop()

    def test_stop_releases_the_port(self, store):
        server = TelemetryServer(store).start()
        host, port = "127.0.0.1", server.port
        server.stop()
        # Connecting after a clean stop must be refused.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5).close()

    def test_double_start_rejected(self, store):
        server = TelemetryServer(store).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_stop_without_start_closes_socket(self, store):
        TelemetryServer(store).stop()  # must not raise

    def test_concurrent_scrapes(self, store):
        import concurrent.futures

        with TelemetryServer(store) as server:
            url = f"{server.url}/metrics"
            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                bodies = list(pool.map(lambda _: _get(url)[2], range(16)))
        assert all(body.endswith("# EOF\n") for body in bodies)


class TestSpanLog:
    def test_ring_buffer_bounds_memory(self):
        log = SpanLog(maxlen=3)
        log.extend({"name": f"s{i}"} for i in range(10))
        assert len(log) == 3
        assert [record["name"] for record in log.tail()] == ["s7", "s8", "s9"]

    def test_tail_limit_clamps(self):
        log = SpanLog()
        log.extend([{"name": "a"}, {"name": "b"}])
        assert len(log.tail(100)) == 2
        assert log.tail(0) == []
        assert [r["name"] for r in log.tail(1)] == ["b"]
