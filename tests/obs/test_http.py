"""The HTTP telemetry server: endpoints, health verdicts, shutdown."""

import json
import socket
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricStore, span, tracing
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, SpanLog, TelemetryServer


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode("utf-8")


@pytest.fixture()
def store():
    store = MetricStore()
    store.count("queries_total", 3)
    store.add_time("solve_seconds", 0.5)
    store.count("certificates_total", 3)
    store.gauge("certificate_last_error_bound", 1e-9)
    return store


class TestEndpoints:
    def test_metrics_exposition(self, store):
        with TelemetryServer(store) as server:
            status, headers, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert headers["Content-Type"] == PROMETHEUS_CONTENT_TYPE
        assert "repro_queries_total_total 3" in body
        assert body.endswith("# EOF\n")

    def test_healthz_ok(self, store):
        with TelemetryServer(store) as server:
            status, headers, body = _get(f"{server.url}/healthz")
        assert status == 200
        assert headers["Content-Type"] == "application/json"
        payload = json.loads(body)
        assert payload["status"] == "ok"
        assert payload["certificates"]["total"] == 3

    def test_healthz_degraded_is_503(self, store):
        store.count("certificates_degraded")
        with TelemetryServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/healthz", timeout=5.0)
        assert excinfo.value.code == 503
        payload = json.loads(excinfo.value.read())
        assert payload["status"] == "degraded"

    def test_traces_ndjson_and_limit(self, store):
        log = SpanLog()
        with tracing() as tracer:
            for index in range(5):
                with span("phase", index=index):
                    pass
        log.extend(tracer.as_dicts())
        with TelemetryServer(store, span_log=log) as server:
            _status, headers, body = _get(f"{server.url}/traces")
            assert headers["Content-Type"] == "application/x-ndjson"
            records = [json.loads(line) for line in body.splitlines()]
            assert len(records) == 5
            assert all(record["name"] == "phase" for record in records)
            assert all(record["trace_id"] == tracer.trace_id for record in records)

            _status, _headers, tail = _get(f"{server.url}/traces?limit=2")
            tail_records = [json.loads(line) for line in tail.splitlines()]
            assert [r["attributes"]["index"] for r in tail_records] == [3, 4]

    def test_traces_empty_log(self, store):
        with TelemetryServer(store) as server:
            status, _headers, body = _get(f"{server.url}/traces")
        assert status == 200
        assert body == ""

    def test_unknown_path_is_404(self, store):
        with TelemetryServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/nope", timeout=5.0)
        assert excinfo.value.code == 404


class TestLifecycle:
    def test_ephemeral_port_resolved(self, store):
        server = TelemetryServer(store, port=0)
        try:
            assert server.port > 0
            assert str(server.port) in server.url
        finally:
            server.stop()

    def test_stop_releases_the_port(self, store):
        server = TelemetryServer(store).start()
        host, port = "127.0.0.1", server.port
        server.stop()
        # Connecting after a clean stop must be refused.
        with pytest.raises(OSError):
            socket.create_connection((host, port), timeout=0.5).close()

    def test_double_start_rejected(self, store):
        server = TelemetryServer(store).start()
        try:
            with pytest.raises(RuntimeError):
                server.start()
        finally:
            server.stop()

    def test_stop_without_start_closes_socket(self, store):
        TelemetryServer(store).stop()  # must not raise

    def test_concurrent_scrapes(self, store):
        import concurrent.futures

        with TelemetryServer(store) as server:
            url = f"{server.url}/metrics"
            with concurrent.futures.ThreadPoolExecutor(max_workers=8) as pool:
                bodies = list(pool.map(lambda _: _get(url)[2], range(16)))
        assert all(body.endswith("# EOF\n") for body in bodies)


class TestQueryValidation:
    """Junk query strings answer 400, not a traceback-into-500."""

    @pytest.mark.parametrize(
        "query",
        [
            "limit=frob",
            "limit=-1",
            "limit=1e3",
            "limit=" + "9" * 40,
        ],
    )
    def test_bad_traces_limit_is_400(self, store, query):
        with TelemetryServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/traces?{query}", timeout=5.0)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert "error" in payload

    def test_unknown_metrics_format_is_400(self, store):
        with TelemetryServer(store) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(
                    f"{server.url}/metrics?format=xml", timeout=5.0
                )
        assert excinfo.value.code == 400

    def test_json_metrics_snapshot_carries_instance(self, store):
        with TelemetryServer(store, instance="me") as server:
            _status, _headers, body = _get(f"{server.url}/metrics?format=json")
        payload = json.loads(body)
        assert payload["instance"] == "me"
        assert payload["metrics"]["counters"]["queries_total"] == 3

    def test_valid_limit_still_works(self, store):
        log = SpanLog()
        log.extend([{"name": f"s{i}"} for i in range(5)])
        with TelemetryServer(store, span_log=log) as server:
            _status, _headers, body = _get(f"{server.url}/traces?limit=2")
        assert len(body.splitlines()) == 2


class TestSpanLog:
    def test_ring_buffer_bounds_memory(self):
        log = SpanLog(maxlen=3)
        log.extend({"name": f"s{i}"} for i in range(10))
        assert len(log) == 3
        assert [record["name"] for record in log.tail()] == ["s7", "s8", "s9"]

    def test_tail_limit_clamps(self):
        log = SpanLog()
        log.extend([{"name": "a"}, {"name": "b"}])
        assert len(log.tail(100)) == 2
        assert log.tail(0) == []
        assert [r["name"] for r in log.tail(1)] == ["b"]

    def test_concurrent_extends_lose_nothing(self):
        import threading

        log = SpanLog(maxlen=100_000)
        writers, per_writer = 8, 1000
        barrier = threading.Barrier(writers)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_writer):
                log.extend([{"worker": worker, "index": i}])

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        records = log.tail()
        assert len(records) == writers * per_writer
        # Per-writer order is preserved even under interleaving.
        for worker in range(writers):
            indices = [r["index"] for r in records if r["worker"] == worker]
            assert indices == list(range(per_writer))

    def test_concurrent_extend_and_tail(self):
        import threading

        log = SpanLog(maxlen=256)
        stop = threading.Event()

        def write() -> None:
            i = 0
            while not stop.is_set():
                log.extend([{"index": i}])
                i += 1

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for _ in range(200):
                tail = log.tail(16)
                indices = [record["index"] for record in tail]
                assert indices == sorted(indices), "torn tail read"
        finally:
            stop.set()
            writer.join()
