"""Prometheus text-format conformance and MetricStore thread-safety.

A scraper parses the exposition line by line, so the output must follow
the text-format grammar exactly: every sample family announced by
``# HELP`` then ``# TYPE`` (in that order, once each), sample lines
matching ``name{labels} value``, cumulative histogram buckets with a
terminal ``+Inf`` equal to ``_count``, and escaped label values.  The
store itself is hammered from concurrent writer threads -- one process
serves HTTP scrapes while solver threads record, so lost updates or torn
reads would surface as corrupt telemetry.
"""

import math
import re
import threading

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricStore,
    escape_label_value,
    prometheus_exposition,
)
from repro.obs.export import prometheus_federation

#: Label values chosen to break naive exposition renderers: embedded
#: quotes, backslashes, newlines, and combinations that collide with
#: the escape sequences themselves.
HOSTILE_LABEL_VALUES = [
    'plain"quote',
    "back\\slash",
    "new\nline",
    'all\\"of\nthem\\',
    "\\n",  # literal backslash-n, must NOT collapse into a newline escape
    "",
]

_SAMPLE_RE = re.compile(
    r"^[a-zA-Z_][a-zA-Z0-9_]*"  # metric name
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\""
    r"(,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\\n]|\\\\|\\\"|\\n)*\")*\})?"  # labels
    r" (?:[+-]?(?:\d+(?:\.\d+)?(?:e[+-]?\d+)?|Inf)|NaN)$"  # value
)


def _populated_store() -> MetricStore:
    store = MetricStore()
    store.count("queries_total", 7)
    store.count("weird-name.with/chars", 1)
    store.add_time("solve_seconds", 1.5)
    store.gauge("certificate_last_error_bound", 2.5e-11)
    store.gauge("certificate_error_bound_max", float("inf"))
    for value in (1e-11, 1e-7, 0.5, 100.0):
        store.observe("certificate_error_bound", value)
    store.set_info("build", version="1.0", channel='sta"ble\nnightly\\x')
    return store


class TestGrammar:
    def test_every_line_is_comment_or_valid_sample(self):
        text = prometheus_exposition(_populated_store())
        assert text.endswith("# EOF\n")
        for line in text.splitlines():
            if line.startswith("#"):
                assert re.match(r"^# (HELP|TYPE|EOF)( [a-zA-Z_][a-zA-Z0-9_]* .*| .*)?$", line)
            else:
                assert _SAMPLE_RE.match(line), f"malformed sample line: {line!r}"

    def test_help_precedes_type_precedes_samples(self):
        text = prometheus_exposition(_populated_store())
        lines = text.splitlines()
        seen: dict[str, list[str]] = {}
        for line in lines:
            if line.startswith("# HELP "):
                name = line.split()[2]
                assert name not in seen, f"duplicate HELP for {name}"
                seen[name] = ["help"]
            elif line.startswith("# TYPE "):
                name = line.split()[2]
                assert seen.get(name) == ["help"], f"TYPE before HELP for {name}"
                seen[name].append("type")
            elif line and not line.startswith("#"):
                name = line.split("{")[0].split()[0]
                family = next((f for f in seen if name.startswith(f)), None)
                assert family is not None, f"sample {name} without HELP/TYPE"
                assert "type" in seen[family]

    def test_metric_names_sanitised(self):
        text = prometheus_exposition(_populated_store())
        assert "repro_weird_name_with_chars_total 1" in text

    def test_counter_and_timer_families_are_counters(self):
        text = prometheus_exposition(_populated_store())
        assert "# TYPE repro_queries_total_total counter" in text
        assert "# TYPE repro_solve_seconds_total counter" in text
        assert "repro_solve_seconds_total 1.5" in text

    def test_gauge_rendering_including_infinity(self):
        text = prometheus_exposition(_populated_store())
        assert "# TYPE repro_certificate_last_error_bound gauge" in text
        assert "repro_certificate_error_bound_max +Inf" in text

    def test_label_escaping(self):
        assert escape_label_value('a"b') == 'a\\"b'
        assert escape_label_value("a\\b") == "a\\\\b"
        assert escape_label_value("a\nb") == "a\\nb"
        text = prometheus_exposition(_populated_store())
        assert 'channel="sta\\"ble\\nnightly\\\\x"' in text

    def test_info_metric_is_constant_one_gauge(self):
        text = prometheus_exposition(_populated_store())
        info_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_build{")
        )
        assert info_line.endswith(" 1")
        assert 'version="1.0"' in info_line


class TestHostileLabels:
    """Escaping holds for adversarial label values everywhere labels occur."""

    def test_escape_round_trips(self):
        for value in HOSTILE_LABEL_VALUES:
            escaped = escape_label_value(value)
            unescaped = (
                escaped.replace("\\\\", "\x00")
                .replace("\\n", "\n")
                .replace('\\"', '"')
                .replace("\x00", "\\")
            )
            assert unescaped == value, f"not round-trippable: {value!r}"

    def test_hostile_constant_labels_keep_grammar(self):
        for value in HOSTILE_LABEL_VALUES:
            text = prometheus_exposition(
                _populated_store(), labels={"instance": value}
            )
            for line in text.splitlines():
                if not line.startswith("#"):
                    assert _SAMPLE_RE.match(line), f"malformed: {line!r}"

    def test_hostile_info_labels_keep_grammar(self):
        store = MetricStore()
        for index, value in enumerate(HOSTILE_LABEL_VALUES):
            store.set_info(f"build_{index}", hostile=value)
        text = prometheus_exposition(store)
        for line in text.splitlines():
            if not line.startswith("#"):
                assert _SAMPLE_RE.match(line), f"malformed: {line!r}"

    def test_hostile_instance_names_in_federation(self):
        snapshots = [
            (value or "empty", _populated_store().as_dict())
            for value in HOSTILE_LABEL_VALUES
        ]
        text = prometheus_federation(snapshots)
        assert text.endswith("# EOF\n")
        for line in text.splitlines():
            if line.startswith("#"):
                continue
            assert _SAMPLE_RE.match(line), f"malformed: {line!r}"
            assert "instance=" in line

    def test_federation_single_header_per_family(self):
        snapshots = [
            ("a", _populated_store().as_dict()),
            ("b", _populated_store().as_dict()),
        ]
        text = prometheus_federation(snapshots)
        lines = text.splitlines()
        help_names = [line.split()[2] for line in lines if line.startswith("# HELP ")]
        assert len(help_names) == len(set(help_names)), "duplicate HELP headers"
        type_names = [line.split()[2] for line in lines if line.startswith("# TYPE ")]
        assert len(type_names) == len(set(type_names)), "duplicate TYPE headers"
        assert 'repro_queries_total_total{instance="a"} 7' in text
        assert 'repro_queries_total_total{instance="b"} 7' in text

    def test_federation_histogram_le_composes_with_instance(self):
        text = prometheus_federation([("w", _populated_store().as_dict())])
        bucket_lines = [
            line
            for line in text.splitlines()
            if line.startswith("repro_certificate_error_bound_bucket")
        ]
        assert bucket_lines, "histogram buckets missing from federation"
        for line in bucket_lines:
            assert 'instance="w"' in line
            assert "le=" in line
            assert _SAMPLE_RE.match(line), f"malformed: {line!r}"


class TestHistogramConsistency:
    def test_buckets_cumulative_and_terminal(self):
        store = _populated_store()
        text = prometheus_exposition(store)
        bucket_lines = [
            line for line in text.splitlines()
            if line.startswith("repro_certificate_error_bound_bucket")
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in bucket_lines]
        assert counts == sorted(counts), "buckets must be cumulative"
        assert 'le="+Inf"' in bucket_lines[-1]
        count_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_certificate_error_bound_count")
        )
        assert int(count_line.rsplit(" ", 1)[1]) == counts[-1] == 4
        sum_line = next(
            line for line in text.splitlines()
            if line.startswith("repro_certificate_error_bound_sum")
        )
        observed_sum = float(sum_line.rsplit(" ", 1)[1])
        assert math.isclose(observed_sum, 1e-11 + 1e-7 + 0.5 + 100.0)

    def test_bucket_bounds_match_default_bounds(self):
        store = MetricStore()
        store.observe("latency", 1e-3)
        data = store.as_dict()["histograms"]["latency"]
        assert tuple(data["bounds"]) == DEFAULT_BUCKETS
        assert sum(data["counts"]) == 1


class TestThreadSafety:
    def test_concurrent_writers_lose_nothing(self):
        store = MetricStore()
        writers, per_writer = 8, 2000
        barrier = threading.Barrier(writers)

        def hammer(worker: int) -> None:
            barrier.wait()
            for i in range(per_writer):
                store.count("hits")
                store.add_time("work_seconds", 0.001)
                store.gauge("last_value", float(i))
                store.gauge("peak_value_max", float(worker * per_writer + i))
                store.observe("latency", 1e-6 * (i % 7 + 1))

        threads = [
            threading.Thread(target=hammer, args=(worker,)) for worker in range(writers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        total = writers * per_writer
        assert store.counter("hits") == total
        assert math.isclose(store.seconds("work_seconds"), 0.001 * total, rel_tol=1e-6)
        assert store.gauge_value("peak_value_max") == float(total - 1)
        histogram = store.as_dict()["histograms"]["latency"]
        assert sum(histogram["counts"]) == total

    def test_concurrent_scrapes_while_writing(self):
        store = MetricStore()
        stop = threading.Event()

        def write() -> None:
            while not stop.is_set():
                store.count("spins")
                store.observe("latency", 1e-6)

        def scrape() -> list[str]:
            texts = []
            for _ in range(50):
                texts.append(prometheus_exposition(store))
            return texts

        writer = threading.Thread(target=write)
        writer.start()
        try:
            for text in scrape():
                assert text.endswith("# EOF\n")
                # A torn histogram read would break cumulativity.
                buckets = [
                    int(line.rsplit(" ", 1)[1])
                    for line in text.splitlines()
                    if line.startswith("repro_latency_bucket")
                ]
                assert buckets == sorted(buckets)
        finally:
            stop.set()
            writer.join()
