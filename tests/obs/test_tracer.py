"""Unit tests for the span tracer."""

import io
import json
import os

import pytest

from repro.obs import (
    Tracer,
    current_tracer,
    read_jsonl,
    reset_subprocess_tracer,
    span,
    summarize_durations,
    sweep_span,
    tracing,
)
from repro.obs.tracer import _NULL_SPAN, _NULL_SWEEP


class TestDisabledPath:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_span_returns_shared_null_context(self):
        """The disabled path allocates nothing: every call returns the
        module-level null context manager."""
        assert span("anything", t=1.0) is _NULL_SPAN
        assert span("else") is _NULL_SPAN

    def test_null_span_yields_none(self):
        with span("disabled") as sp:
            assert sp is None

    def test_null_span_reenterable(self):
        for _ in range(3):
            with span("again") as sp:
                assert sp is None


class TestRecording:
    def test_nesting_and_parenthood(self):
        with tracing() as tracer:
            with span("outer", family="ftwc"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        assert [s.name for s in tracer.spans] == ["outer", "inner", "inner"]
        outer, first, second = tracer.spans
        assert outer.parent is None and outer.depth == 0
        assert first.parent == outer.index and first.depth == 1
        assert second.parent == outer.index
        assert outer.attributes["family"] == "ftwc"

    def test_timings_accumulate(self):
        with tracing() as tracer:
            with span("work"):
                sum(range(10000))
        record = tracer.spans[0]
        assert record.wall_seconds >= 0.0
        assert tracer.total_wall_seconds() == record.wall_seconds

    def test_self_seconds_excludes_children(self):
        with tracing() as tracer:
            with span("parent"):
                with span("child"):
                    sum(range(50000))
        parent, child = tracer.spans
        assert tracer.self_seconds(parent) == pytest.approx(
            parent.wall_seconds - child.wall_seconds
        )

    def test_annotate_after_the_fact(self):
        with tracing() as tracer:
            with span("phase") as sp:
                assert sp is not None
                sp.annotate(iterations=42)
        assert tracer.spans[0].attributes["iterations"] == 42

    def test_tracer_deactivated_after_scope(self):
        with tracing():
            assert current_tracer() is not None
        assert current_tracer() is None
        assert span("after") is _NULL_SPAN

    def test_tracing_scopes_do_not_nest(self):
        with tracing():
            with pytest.raises(RuntimeError):
                with tracing():
                    pass

    def test_exception_still_closes_span(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with span("failing"):
                    raise ValueError("boom")
        assert tracer.spans[0].wall_seconds >= 0.0
        assert current_tracer() is None

    def test_exception_marks_span_status_error(self):
        """Regression: a span left through an exception must be closed
        with an ``error`` status and carry the exception summary, so
        traces of failed queries are attributable."""
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with span("outer"):
                    with span("failing"):
                        raise ValueError("boom")
        outer, failing = tracer.spans
        assert failing.status == "error"
        assert failing.attributes["error"] == "ValueError: boom"
        # The error propagates through enclosing spans too.
        assert outer.status == "error"
        assert tracer.as_dicts()[1]["status"] == "error"
        assert "!error" in tracer.render_tree()

    def test_explicit_error_attribute_not_clobbered(self):
        with tracing() as tracer:
            with pytest.raises(RuntimeError):
                with span("failing") as sp:
                    sp.annotate(error="custom diagnosis")
                    raise RuntimeError("ignored")
        assert tracer.spans[0].status == "error"
        assert tracer.spans[0].attributes["error"] == "custom diagnosis"

    def test_successful_span_status_ok(self):
        with tracing() as tracer:
            with span("fine"):
                pass
        assert tracer.spans[0].status == "ok"
        assert "!error" not in tracer.render_tree()

    def test_allocation_tracking(self):
        with tracing(track_allocations=True) as tracer:
            with span("alloc"):
                _block = bytearray(1 << 20)
        record = tracer.spans[0]
        assert record.alloc_bytes is not None
        assert record.alloc_bytes >= (1 << 20) * 0.9


class TestAggregationAndExport:
    def test_aggregate_groups_by_name(self):
        with tracing() as tracer:
            for _ in range(3):
                with span("repeated"):
                    pass
            with span("single"):
                pass
        buckets = {b["name"]: b for b in tracer.aggregate()}
        assert buckets["repeated"]["count"] == 3
        assert buckets["single"]["count"] == 1

    def test_jsonl_round_trip(self, tmp_path):
        with tracing() as tracer:
            with span("outer", n=2):
                with span("inner"):
                    pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["outer", "inner"]
        assert records[0]["attributes"]["n"] == 2
        assert records[1]["parent"] == records[0]["index"]

    def test_jsonl_to_stream_is_valid_json_lines(self):
        with tracing() as tracer:
            with span("one"):
                pass
        sink = io.StringIO()
        tracer.write_jsonl(sink)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "one"

    def test_render_tree_mentions_every_span(self):
        with tracing() as tracer:
            with span("build"):
                with span("sweep", t=100.0):
                    pass
        rendered = tracer.render_tree()
        assert "build" in rendered
        assert "sweep" in rendered
        assert "t=100" in rendered

    def test_numpy_attributes_serialise(self):
        import numpy as np

        with tracing() as tracer:
            with span("np", value=np.float64(0.5), count=np.int64(3)):
                pass
        record = tracer.as_dicts()[0]
        json.dumps(record)  # must not raise
        assert record["attributes"]["value"] == 0.5


class TestCrossProcessIdentity:
    def test_span_ids_are_process_qualified(self):
        with tracing() as tracer:
            with span("outer"):
                with span("inner"):
                    pass
        outer, inner = tracer.spans
        pid_hex = f"{os.getpid():x}"
        assert outer.span_id == f"{tracer.trace_id}:{pid_hex}:0"
        assert inner.parent_span_id == outer.span_id
        records = tracer.as_dicts()
        assert all(record["trace_id"] == tracer.trace_id for record in records)

    def test_pinned_trace_id(self):
        with tracing(trace_id="cafe0123") as tracer:
            pass
        assert tracer.trace_id == "cafe0123"

    def test_adopt_remaps_indices_and_keeps_span_ids(self):
        parent = Tracer()
        with parent.span("parent.work"):
            pass
        worker = Tracer(trace_id=parent.trace_id)
        with worker.span("worker.outer"):
            with worker.span("worker.inner"):
                pass
        shipped = worker.as_dicts()

        adopted = parent.adopt(
            shipped, origin_epoch=worker.origin_epoch, attributes={"worker_pid": 4242}
        )
        assert [s.name for s in parent.spans] == [
            "parent.work", "worker.outer", "worker.inner",
        ]
        outer, inner = adopted
        assert inner.parent == outer.index  # remapped into the parent list
        assert outer.span_id == shipped[0]["span_id"]  # stable id kept verbatim
        assert outer.attributes["worker_pid"] == 4242
        # One logical trace: adopted spans export under the parent id.
        assert all(r["trace_id"] == parent.trace_id for r in parent.as_dicts())

    def test_adopt_aligns_timelines(self):
        parent = Tracer()
        worker = Tracer(trace_id=parent.trace_id)
        with worker.span("w"):
            pass
        offset = worker.origin_epoch - parent.origin_epoch
        started_remote = worker.spans[0].started_at
        (adopted,) = parent.adopt(
            worker.as_dicts(), origin_epoch=worker.origin_epoch
        )
        assert adopted.started_at == pytest.approx(started_remote + offset)

    def test_reset_subprocess_tracer_clears_inherited_state(self):
        with tracing():
            # Simulates the fork-inherited module global in a worker.
            reset_subprocess_tracer()
            assert current_tracer() is None
            with tracing() as inner:  # workers re-activate their own
                with span("w"):
                    pass
            assert len(inner.spans) == 1
        assert current_tracer() is None


class TestSweepSpan:
    def test_disabled_returns_shared_null_sweep(self):
        assert sweep_span("x.sweep", t=1.0) is _NULL_SWEEP
        with sweep_span("x.sweep") as recorder:
            assert recorder.enabled is False
            recorder.record(0.5)  # must be a cheap no-op
        with sweep_span("again") as recorder:
            assert recorder.enabled is False

    def test_enabled_attaches_step_summary(self):
        with tracing() as tracer:
            with sweep_span("test.sweep", t=2.0) as recorder:
                assert recorder.enabled is True
                for _ in range(4):
                    recorder.record(0.001)
        record = tracer.spans[0]
        assert record.name == "test.sweep"
        assert record.attributes["t"] == 2.0
        steps = record.attributes["steps"]
        assert steps["steps"] == 4
        assert steps["p50_seconds"] == 0.001

    def test_summary_attached_even_on_error(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with sweep_span("test.sweep") as recorder:
                    recorder.record(0.002)
                    raise ValueError("mid-sweep")
        record = tracer.spans[0]
        assert record.status == "error"
        assert record.attributes["steps"]["steps"] == 1


class TestSummarizeDurations:
    def test_empty(self):
        assert summarize_durations([]) == {"steps": 0}

    def test_quantiles_and_rate(self):
        seconds = [0.001] * 90 + [0.01] * 10
        summary = summarize_durations(seconds)
        assert summary["steps"] == 100
        assert summary["p50_seconds"] == 0.001
        assert summary["p99_seconds"] == 0.01
        assert summary["total_seconds"] == pytest.approx(0.19)
        assert summary["steps_per_second"] == pytest.approx(100 / 0.19)

    def test_histogram_counts_everything(self):
        seconds = [1e-7, 1e-6, 1e-4, 1.0]
        summary = summarize_durations(seconds)
        assert sum(summary["histogram"].values()) == len(seconds)
