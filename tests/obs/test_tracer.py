"""Unit tests for the span tracer."""

import io
import json

import pytest

from repro.obs import current_tracer, read_jsonl, span, summarize_durations, tracing
from repro.obs.tracer import _NULL_SPAN


class TestDisabledPath:
    def test_no_tracer_by_default(self):
        assert current_tracer() is None

    def test_span_returns_shared_null_context(self):
        """The disabled path allocates nothing: every call returns the
        module-level null context manager."""
        assert span("anything", t=1.0) is _NULL_SPAN
        assert span("else") is _NULL_SPAN

    def test_null_span_yields_none(self):
        with span("disabled") as sp:
            assert sp is None

    def test_null_span_reenterable(self):
        for _ in range(3):
            with span("again") as sp:
                assert sp is None


class TestRecording:
    def test_nesting_and_parenthood(self):
        with tracing() as tracer:
            with span("outer", family="ftwc"):
                with span("inner"):
                    pass
                with span("inner"):
                    pass
        assert [s.name for s in tracer.spans] == ["outer", "inner", "inner"]
        outer, first, second = tracer.spans
        assert outer.parent is None and outer.depth == 0
        assert first.parent == outer.index and first.depth == 1
        assert second.parent == outer.index
        assert outer.attributes["family"] == "ftwc"

    def test_timings_accumulate(self):
        with tracing() as tracer:
            with span("work"):
                sum(range(10000))
        record = tracer.spans[0]
        assert record.wall_seconds >= 0.0
        assert tracer.total_wall_seconds() == record.wall_seconds

    def test_self_seconds_excludes_children(self):
        with tracing() as tracer:
            with span("parent"):
                with span("child"):
                    sum(range(50000))
        parent, child = tracer.spans
        assert tracer.self_seconds(parent) == pytest.approx(
            parent.wall_seconds - child.wall_seconds
        )

    def test_annotate_after_the_fact(self):
        with tracing() as tracer:
            with span("phase") as sp:
                assert sp is not None
                sp.annotate(iterations=42)
        assert tracer.spans[0].attributes["iterations"] == 42

    def test_tracer_deactivated_after_scope(self):
        with tracing():
            assert current_tracer() is not None
        assert current_tracer() is None
        assert span("after") is _NULL_SPAN

    def test_tracing_scopes_do_not_nest(self):
        with tracing():
            with pytest.raises(RuntimeError):
                with tracing():
                    pass

    def test_exception_still_closes_span(self):
        with tracing() as tracer:
            with pytest.raises(ValueError):
                with span("failing"):
                    raise ValueError("boom")
        assert tracer.spans[0].wall_seconds >= 0.0
        assert current_tracer() is None

    def test_allocation_tracking(self):
        with tracing(track_allocations=True) as tracer:
            with span("alloc"):
                _block = bytearray(1 << 20)
        record = tracer.spans[0]
        assert record.alloc_bytes is not None
        assert record.alloc_bytes >= (1 << 20) * 0.9


class TestAggregationAndExport:
    def test_aggregate_groups_by_name(self):
        with tracing() as tracer:
            for _ in range(3):
                with span("repeated"):
                    pass
            with span("single"):
                pass
        buckets = {b["name"]: b for b in tracer.aggregate()}
        assert buckets["repeated"]["count"] == 3
        assert buckets["single"]["count"] == 1

    def test_jsonl_round_trip(self, tmp_path):
        with tracing() as tracer:
            with span("outer", n=2):
                with span("inner"):
                    pass
        path = tmp_path / "trace.jsonl"
        tracer.write_jsonl(path)
        records = read_jsonl(path)
        assert [r["name"] for r in records] == ["outer", "inner"]
        assert records[0]["attributes"]["n"] == 2
        assert records[1]["parent"] == records[0]["index"]

    def test_jsonl_to_stream_is_valid_json_lines(self):
        with tracing() as tracer:
            with span("one"):
                pass
        sink = io.StringIO()
        tracer.write_jsonl(sink)
        lines = sink.getvalue().strip().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "one"

    def test_render_tree_mentions_every_span(self):
        with tracing() as tracer:
            with span("build"):
                with span("sweep", t=100.0):
                    pass
        rendered = tracer.render_tree()
        assert "build" in rendered
        assert "sweep" in rendered
        assert "t=100" in rendered

    def test_numpy_attributes_serialise(self):
        import numpy as np

        with tracing() as tracer:
            with span("np", value=np.float64(0.5), count=np.int64(3)):
                pass
        record = tracer.as_dicts()[0]
        json.dumps(record)  # must not raise
        assert record["attributes"]["value"] == 0.5


class TestSummarizeDurations:
    def test_empty(self):
        assert summarize_durations([]) == {"steps": 0}

    def test_quantiles_and_rate(self):
        seconds = [0.001] * 90 + [0.01] * 10
        summary = summarize_durations(seconds)
        assert summary["steps"] == 100
        assert summary["p50_seconds"] == 0.001
        assert summary["p99_seconds"] == 0.01
        assert summary["total_seconds"] == pytest.approx(0.19)
        assert summary["steps_per_second"] == pytest.approx(100 / 0.19)

    def test_histogram_counts_everything(self):
        seconds = [1e-7, 1e-6, 1e-4, 1.0]
        summary = summarize_durations(seconds)
        assert sum(summary["histogram"].values()) == len(seconds)
