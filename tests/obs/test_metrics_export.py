"""MetricStore, EngineMetrics compatibility, and Prometheus exposition."""

from repro.engine.metrics import EngineMetrics
from repro.obs import MetricStore, prometheus_exposition


class TestMetricStore:
    def test_counters_and_timers(self):
        store = MetricStore()
        store.count("queries_total")
        store.count("queries_total", 4)
        store.add_time("solve_seconds", 0.25)
        assert store.counter("queries_total") == 5
        assert store.seconds("solve_seconds") == 0.25
        assert store.counter("never") == 0

    def test_timer_context(self):
        store = MetricStore()
        with store.timer("t_seconds"):
            pass
        assert store.seconds("t_seconds") >= 0.0

    def test_merge_from_dict_and_store(self):
        a = MetricStore()
        a.count("x", 2)
        b = MetricStore()
        b.count("x", 3)
        b.add_time("y_seconds", 1.0)
        a.merge(b)
        a.merge({"counters": {"x": 1}, "timers": {"y_seconds": 0.5}})
        assert a.counter("x") == 6
        assert a.seconds("y_seconds") == 1.5

    def test_engine_metrics_is_a_metric_store(self):
        """The engine's historical class is the shared core -- merge and
        the Prometheus rendering come for free."""
        metrics = EngineMetrics()
        assert isinstance(metrics, MetricStore)
        metrics.count("cache_misses")
        assert "cache_misses_total" in metrics.prometheus()


class TestPrometheusExposition:
    def test_counter_and_timer_rendering(self):
        store = MetricStore()
        store.count("queries_total", 7)
        store.add_time("solve_seconds", 1.5)
        text = prometheus_exposition(store)
        assert "# TYPE repro_queries_total_total counter" in text
        assert "repro_queries_total_total 7" in text
        assert "# TYPE repro_solve_seconds_total counter" in text
        assert "repro_solve_seconds_total 1.5" in text

    def test_terminated_by_eof_marker(self):
        assert prometheus_exposition(MetricStore()).endswith("# EOF\n")

    def test_name_sanitisation(self):
        store = MetricStore()
        store.count("weird-name.with/chars", 1)
        text = prometheus_exposition(store)
        assert "repro_weird_name_with_chars_total 1" in text

    def test_custom_prefix(self):
        store = MetricStore()
        store.count("hits", 2)
        assert "svc_hits_total 2" in prometheus_exposition(store, prefix="svc_")

    def test_deterministic_ordering(self):
        store = MetricStore()
        store.count("b")
        store.count("a")
        text = prometheus_exposition(store)
        assert text.index("repro_a_total") < text.index("repro_b_total")
