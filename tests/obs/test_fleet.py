"""Fleet telemetry: push-gateway, federation scraping, health roll-ups.

The behaviors under test are the ones the fleet story promises: pushed
and scraped sources land in one instance-labeled exposition, a source
that dies is marked down/stale and flips the rolled-up ``/healthz`` to
503 within the staleness window, and a restarted source resumes cleanly
under the same instance name.
"""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs import MetricStore
from repro.obs.fleet import (
    FleetAggregator,
    FleetStore,
    PushClient,
    parse_target,
    push_gateway_from_env,
    push_snapshot,
)
from repro.obs.http import SpanLog, TelemetryServer


def _get(url, timeout=5.0):
    with urllib.request.urlopen(url, timeout=timeout) as response:
        return response.status, response.read().decode("utf-8")


def _healthy_snapshot(queries=3):
    store = MetricStore()
    store.count("queries_total", queries)
    store.count("certificates_total", queries)
    return store.as_dict()


def _degraded_snapshot():
    store = MetricStore()
    store.count("certificates_total", 2)
    store.count("certificates_degraded", 1)
    return store.as_dict()


class TestParseTarget:
    def test_bare_url_labels_by_netloc(self):
        assert parse_target("http://127.0.0.1:9700") == (
            "127.0.0.1:9700",
            "http://127.0.0.1:9700",
        )

    def test_named_target(self):
        assert parse_target("solver-a=http://10.0.0.2:9700/") == (
            "solver-a",
            "http://10.0.0.2:9700",
        )

    def test_schemeless_target_gets_http(self):
        instance, base = parse_target("127.0.0.1:9700")
        assert instance == "127.0.0.1:9700"
        assert base == "http://127.0.0.1:9700"

    def test_unnameable_target_rejected(self):
        with pytest.raises(ValueError):
            parse_target("name=")


class TestPushGatewayEnv:
    def test_unset_is_none(self, monkeypatch):
        monkeypatch.delenv("REPRO_PUSH_GATEWAY", raising=False)
        assert push_gateway_from_env() is None

    def test_empty_is_none(self, monkeypatch):
        monkeypatch.setenv("REPRO_PUSH_GATEWAY", "   ")
        assert push_gateway_from_env() is None

    def test_set_is_returned(self, monkeypatch):
        monkeypatch.setenv("REPRO_PUSH_GATEWAY", "http://127.0.0.1:9780")
        assert push_gateway_from_env() == "http://127.0.0.1:9780"


class TestFleetStore:
    def test_push_then_exposition_carries_instance_labels(self):
        fleet = FleetStore()
        fleet.record_push("worker-1", _healthy_snapshot(queries=5), now=100.0)
        fleet.record_push("worker-2", _healthy_snapshot(queries=7), now=100.0)
        text = fleet.exposition(now=100.5)
        assert 'repro_queries_total_total{instance="worker-1"} 5' in text
        assert 'repro_queries_total_total{instance="worker-2"} 7' in text
        assert 'repro_fleet_source_up{instance="worker-1"} 1' in text
        assert "repro_fleet_sources 2" in text
        assert text.endswith("# EOF\n")
        # One family header even with two sources contributing samples.
        assert text.count("# TYPE repro_queries_total_total counter") == 1

    def test_repush_replaces_snapshot_and_counts(self):
        fleet = FleetStore()
        fleet.record_push("w", _healthy_snapshot(queries=1), now=10.0)
        state = fleet.record_push("w", _healthy_snapshot(queries=9), now=11.0)
        assert state.pushes == 2
        assert 'repro_queries_total_total{instance="w"} 9' in fleet.exposition(now=11.0)
        assert len(fleet) == 1

    def test_stale_source_drops_up_and_degrades_health(self):
        fleet = FleetStore(staleness_seconds=5.0)
        fleet.record_push("w", _healthy_snapshot(), now=100.0)
        assert fleet.health(now=101.0)["status"] == "ok"
        text = fleet.exposition(now=120.0)
        assert 'repro_fleet_source_up{instance="w"} 0' in text
        verdict = fleet.health(now=120.0)
        assert verdict["status"] == "degraded"
        assert verdict["sources"]["w"]["status"] == "stale"
        assert verdict["fleet"]["stale"] == 1

    def test_degraded_certificates_degrade_the_rollup(self):
        fleet = FleetStore()
        fleet.record_push("ok-worker", _healthy_snapshot(), now=50.0)
        fleet.record_push("bad-worker", _degraded_snapshot(), now=50.0)
        verdict = fleet.health(now=50.1)
        assert verdict["status"] == "degraded"
        assert verdict["sources"]["ok-worker"]["status"] == "ok"
        assert verdict["sources"]["bad-worker"]["status"] == "degraded"

    def test_failure_marks_source_down_but_keeps_last_snapshot(self):
        fleet = FleetStore()
        fleet.record_scrape("s", _healthy_snapshot(queries=4), now=10.0)
        fleet.record_failure("s", "connection refused")
        verdict = fleet.health(now=10.5)
        assert verdict["sources"]["s"]["status"] == "down"
        assert verdict["sources"]["s"]["last_error"] == "connection refused"
        # The dead worker's final state stays visible in the exposition.
        text = fleet.exposition(now=10.5)
        assert 'repro_queries_total_total{instance="s"} 4' in text
        assert 'repro_fleet_source_up{instance="s"} 0' in text

    def test_empty_fleet_is_healthy(self):
        assert FleetStore().health()["status"] == "ok"

    def test_traces_tagged_with_instance_and_limited(self):
        fleet = FleetStore()
        spans = [{"name": "solve", "seconds": 0.1}, {"name": "build", "seconds": 0.2}]
        fleet.record_push("w1", _healthy_snapshot(), spans=spans, now=1.0)
        fleet.record_push("w2", _healthy_snapshot(), spans=spans[:1], now=1.0)
        merged = fleet.traces()
        assert len(merged) == 3
        assert {record["instance"] for record in merged} == {"w1", "w2"}
        assert len(fleet.traces(limit=2)) == 2

    def test_unmergeable_snapshot_counts_as_degraded(self):
        fleet = FleetStore()
        fleet.record_push("junk", {"counters": {"x": "not-a-number"}}, now=5.0)
        assert fleet.health(now=5.1)["sources"]["junk"]["status"] == "degraded"

    def test_local_snapshot_shares_family_headers(self):
        fleet = FleetStore()
        fleet.record_push("w", _healthy_snapshot(), now=1.0)
        text = fleet.exposition(now=1.0, local=("gateway", _healthy_snapshot()))
        assert 'repro_queries_total_total{instance="gateway"}' in text
        assert text.count("# TYPE repro_queries_total_total counter") == 1


class TestPushEndpoint:
    def test_push_lands_in_federated_metrics(self):
        fleet = FleetStore()
        with TelemetryServer(MetricStore(), fleet=fleet, instance="gw") as server:
            assert push_snapshot(server.url, _healthy_snapshot(queries=2), instance="w")
            status, body = _get(f"{server.url}/metrics")
        assert status == 200
        assert 'repro_queries_total_total{instance="w"} 2' in body

    def test_push_client_normalises_gateway_url(self):
        client = PushClient("127.0.0.1:9999/push/", instance="w")
        assert client.url == "http://127.0.0.1:9999/push"
        assert client.instance == "w"

    def test_push_failure_is_swallowed_and_counted(self):
        client = PushClient("http://127.0.0.1:1", instance="w", timeout=0.2)
        assert client.push(_healthy_snapshot()) is False
        assert client.failures == 1
        assert client.last_error

    def test_push_without_fleet_is_404(self):
        with TelemetryServer(MetricStore()) as server:
            client = PushClient(server.url, instance="w")
            assert client.push(_healthy_snapshot()) is False

    @pytest.mark.parametrize(
        "payload",
        [
            b"not json",
            b"[]",
            b'{"metrics": {}}',
            b'{"instance": "", "metrics": {}}',
            b'{"instance": "w"}',
            b'{"instance": "w", "metrics": {}, "spans": [1, 2]}',
        ],
    )
    def test_malformed_push_is_400(self, payload):
        fleet = FleetStore()
        with TelemetryServer(MetricStore(), fleet=fleet) as server:
            request = urllib.request.Request(
                f"{server.url}/push",
                data=payload,
                headers={"Content-Type": "application/json"},
            )
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 400
        assert "error" in json.loads(excinfo.value.read())
        assert len(fleet) == 0

    def test_oversized_push_is_413(self):
        fleet = FleetStore()
        with TelemetryServer(MetricStore(), fleet=fleet) as server:
            request = urllib.request.Request(
                f"{server.url}/push",
                data=b"{}",
                headers={
                    "Content-Type": "application/json",
                    "Content-Length": str(64 * 1024 * 1024),
                },
            )
            request.has_header = lambda name: True  # keep our Content-Length
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(request, timeout=5.0)
        assert excinfo.value.code == 413


class TestFederationEndpoints:
    def _gateway(self, fleet):
        return TelemetryServer(MetricStore(), fleet=fleet, instance="gw")

    def test_healthz_rolls_up_sources(self):
        fleet = FleetStore()
        fleet.record_push("good", _healthy_snapshot())
        with self._gateway(fleet) as server:
            status, body = _get(f"{server.url}/healthz")
            assert status == 200
            payload = json.loads(body)
            assert payload["status"] == "ok"
            assert payload["fleet"]["sources"] == 1
            assert payload["sources"]["good"]["status"] == "ok"

            fleet.record_push("bad", _degraded_snapshot())
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{server.url}/healthz", timeout=5.0)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["status"] == "degraded"
            assert payload["sources"]["bad"]["status"] == "degraded"

    def test_traces_merges_local_and_fleet(self):
        fleet = FleetStore()
        fleet.record_push("w", _healthy_snapshot(), spans=[{"name": "remote"}])
        log = SpanLog()
        log.extend([{"name": "local"}])
        with TelemetryServer(MetricStore(), span_log=log, fleet=fleet) as server:
            _status, body = _get(f"{server.url}/traces")
        names = [json.loads(line)["name"] for line in body.splitlines()]
        assert names == ["local", "remote"]


class TestAggregator:
    """End-to-end: aggregator scraping live telemetry servers."""

    def _server(self, queries=3, port=0, instance=None):
        store = MetricStore()
        store.count("queries_total", queries)
        store.count("certificates_total", queries)
        return TelemetryServer(store, port=port, instance=instance)

    def test_scrapes_two_live_servers(self):
        fleet = FleetStore()
        with self._server(queries=1) as one, self._server(queries=2) as two:
            aggregator = FleetAggregator(
                [("one", one.url), ("two", two.url)], store=fleet, timeout=2.0
            )
            assert aggregator.scrape_once(force=True) == 2
        text = fleet.exposition()
        assert 'repro_queries_total_total{instance="one"} 1' in text
        assert 'repro_queries_total_total{instance="two"} 2' in text
        assert 'repro_fleet_source_up{instance="one"} 1' in text
        assert 'repro_fleet_source_scrapes_total{instance="one"} 1' in text
        assert fleet.health()["status"] == "ok"

    def test_killed_source_flips_rollup_to_503(self):
        fleet = FleetStore(staleness_seconds=60.0)
        one = self._server(queries=1)
        two = self._server(queries=2)
        one.start()
        two.start()
        aggregator = FleetAggregator(
            [("one", one.url), ("two", two.url)], store=fleet, timeout=2.0
        )
        gateway = TelemetryServer(MetricStore(), fleet=fleet, instance="gw")
        gateway.start()
        try:
            assert aggregator.scrape_once(force=True) == 2
            status, _body = _get(f"{gateway.url}/healthz")
            assert status == 200

            two.stop()  # the "killed" worker
            assert aggregator.scrape_once(force=True) == 1

            text = fleet.exposition()
            assert 'repro_fleet_source_up{instance="two"} 0' in text
            assert 'repro_fleet_source_up{instance="one"} 1' in text
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(f"{gateway.url}/healthz", timeout=5.0)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read())
            assert payload["sources"]["two"]["status"] == "down"
            assert payload["sources"]["one"]["status"] == "ok"
        finally:
            one.stop()
            gateway.stop()

    def test_restarted_source_resumes_under_same_instance(self):
        fleet = FleetStore(staleness_seconds=60.0)
        first = self._server(queries=1)
        first.start()
        port = first.port
        aggregator = FleetAggregator(
            [("phoenix", first.url)], store=fleet, timeout=2.0
        )
        try:
            assert aggregator.scrape_once(force=True) == 1
            first.stop()
            assert aggregator.scrape_once(force=True) == 0
            assert fleet.health()["sources"]["phoenix"]["status"] == "down"

            reborn = self._server(queries=8, port=port)
            reborn.start()
            try:
                assert aggregator.scrape_once(force=True) == 1
            finally:
                reborn.stop()
        finally:
            if first._thread is not None:  # already stopped above on success
                first.stop()
        verdict = fleet.health()
        assert verdict["status"] == "ok"
        assert verdict["sources"]["phoenix"]["status"] == "ok"
        assert 'repro_queries_total_total{instance="phoenix"} 8' in fleet.exposition()
        assert len(fleet) == 1

    def test_failed_target_backs_off_exponentially(self):
        fleet = FleetStore()
        aggregator = FleetAggregator(
            [("dead", "http://127.0.0.1:1")],
            store=fleet,
            interval=1.0,
            timeout=0.2,
            backoff_max=4.0,
        )
        import time

        target = aggregator.targets[0]
        delays = []
        for _ in range(4):
            before = time.monotonic()
            aggregator.scrape_once(force=True)
            delays.append(target.next_due - before)
        assert delays[0] == pytest.approx(1.0, abs=0.5)
        assert delays[1] == pytest.approx(2.0, abs=0.5)
        assert delays[2] == pytest.approx(4.0, abs=0.5)
        assert delays[3] == pytest.approx(4.0, abs=0.5), "capped at backoff_max"
        assert fleet.health()["sources"]["dead"]["status"] == "down"

    def test_degraded_healthz_is_still_a_successful_scrape(self):
        store = MetricStore()
        store.count("certificates_total", 1)
        store.count("certificates_degraded", 1)
        fleet = FleetStore()
        with TelemetryServer(store, instance="sick") as server:
            aggregator = FleetAggregator(
                [("sick", server.url)], store=fleet, timeout=2.0
            )
            assert aggregator.scrape_once(force=True) == 1
        verdict = fleet.health()
        assert verdict["sources"]["sick"]["status"] == "degraded"
        assert verdict["sources"]["sick"]["up"] is True

    def test_engine_batch_pushes_to_gateway(self):
        from repro.engine.solver import run_batch_dicts

        fleet = FleetStore()
        with TelemetryServer(MetricStore(), fleet=fleet, instance="gw") as server:
            batch = run_batch_dicts(
                [{"model": {"family": "ftwc", "n": 1}, "t": 1.0}],
                push_gateway=server.url,
                instance="engine-test",
            )
            assert batch.num_failed == 0
            _status, body = _get(f"{server.url}/metrics")
        assert "engine-test" in fleet.instances()
        assert 'repro_queries_total_total{instance="engine-test"} 1' in body

    def test_engine_env_gateway_fallback(self, monkeypatch):
        from repro.engine.solver import run_batch_dicts

        fleet = FleetStore()
        with TelemetryServer(MetricStore(), fleet=fleet) as server:
            monkeypatch.setenv("REPRO_PUSH_GATEWAY", server.url)
            run_batch_dicts(
                [{"model": {"family": "ftwc", "n": 1}, "t": 1.0}],
                instance="env-wired",
            )
        assert "env-wired" in fleet.instances()

    def test_background_thread_scrapes_until_stopped(self):
        fleet = FleetStore()
        with self._server(queries=6) as server:
            with FleetAggregator(
                [("bg", server.url)], store=fleet, interval=0.05, timeout=2.0
            ):
                deadline = threading.Event()
                for _ in range(100):
                    if fleet.health()["sources"].get("bg", {}).get("up"):
                        break
                    deadline.wait(0.05)
        assert fleet.health()["sources"]["bg"]["up"] is True
