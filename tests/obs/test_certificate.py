"""Numerical-health certificates: soundness of the certified bound.

The load-bearing property: for every Poisson-truncated analysis, the
observed error against a brute-force reference solution must stay below
the certificate's ``error_bound``.  References are computed two ways --
the same algorithm at a far tighter epsilon (truncation error shrinks
with epsilon, so the tight solve is a valid oracle for the loose one),
and, for the transient path, ``scipy.linalg.expm`` on the generator
(an entirely independent algorithm).
"""

import math

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.core.until import timed_until as ctmdp_timed_until
from repro.ctmc.reachability import PreparedCTMCReachability
from repro.ctmc.uniformization import transient_analysis
from repro.engine import Query, run_batch
from repro.logic import check
from repro.models import ftwc_direct
from repro.obs import (
    MetricStore,
    NumericalCertificate,
    certificate_from_foxglynn,
    health_summary,
    poisson_tail_mass,
    record_certificate,
)
from repro.numerics.foxglynn import fox_glynn

REFERENCE_EPSILON = 1e-13


class TestBoundAgainstReference:
    """bound >= observed error on the FTWC family, both model kinds."""

    @pytest.mark.parametrize("epsilon", [1e-3, 1e-6, 1e-9])
    @pytest.mark.parametrize("t", [10.0, 100.0])
    def test_ctmdp_reachability_bound_holds(self, t, epsilon):
        model = ftwc_direct.build_ctmdp(2)
        result = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=epsilon)
        reference = timed_reachability(
            model.ctmdp, model.goal_mask, t, epsilon=REFERENCE_EPSILON
        )
        certificate = result.certificate
        assert certificate is not None
        assert certificate.algorithm == "ctmdp.reachability"
        assert certificate.healthy
        observed = float(np.max(np.abs(result.values - reference.values)))
        assert observed <= certificate.error_bound
        # The a-posteriori bound must not be vacuous: it stays within the
        # a-priori admissible epsilon (plus floating-point noise).
        assert certificate.error_bound <= epsilon + 1e-9

    @pytest.mark.parametrize("objective", ["max", "min"])
    def test_ctmdp_until_bound_holds(self, objective):
        model = ftwc_direct.build_ctmdp(1)
        safe = np.ones(model.ctmdp.num_states, dtype=bool)
        result = ctmdp_timed_until(
            model.ctmdp, safe, model.goal_mask, 100.0, epsilon=1e-6,
            objective=objective,
        )
        reference = ctmdp_timed_until(
            model.ctmdp, safe, model.goal_mask, 100.0, epsilon=REFERENCE_EPSILON,
            objective=objective,
        )
        certificate = result.certificate
        assert certificate is not None and certificate.algorithm == "ctmdp.until"
        assert certificate.healthy
        observed = float(np.max(np.abs(result.values - reference.values)))
        assert observed <= certificate.error_bound

    @pytest.mark.parametrize("t", [10.0, 250.0])
    def test_ctmc_reachability_bound_holds(self, t):
        chain, _configs, goal = ftwc_direct.build_ctmc(1)
        solver = PreparedCTMCReachability(chain, goal)
        values = solver.solve(t, epsilon=1e-6)
        certificate = solver.last_certificate
        reference = PreparedCTMCReachability(chain, goal).solve(
            t, epsilon=REFERENCE_EPSILON
        )
        assert certificate is not None and certificate.algorithm == "ctmc.reachability"
        assert certificate.healthy
        observed = float(np.max(np.abs(values - reference)))
        assert observed <= certificate.error_bound

    def test_transient_bound_holds_against_expm(self):
        from scipy.linalg import expm

        chain, _configs, _goal = ftwc_direct.build_ctmc(1)
        result = transient_analysis(chain, 25.0, epsilon=1e-6)
        certificate = result.certificate
        assert certificate.algorithm == "ctmc.transient"
        assert certificate.healthy

        dense = chain.rates.toarray()
        np.fill_diagonal(dense, 0.0)
        generator = dense - np.diag(dense.sum(axis=1))
        pi0 = np.zeros(chain.num_states)
        pi0[chain.initial] = 1.0
        reference = pi0 @ expm(generator * 25.0)
        observed = float(np.max(np.abs(result.distribution - reference)))
        # expm carries its own rounding; grant it machine-level slack.
        assert observed <= certificate.error_bound + 1e-12

    def test_transient_t_zero_is_exact(self):
        chain, _configs, _goal = ftwc_direct.build_ctmc(1)
        result = transient_analysis(chain, 0.0, epsilon=1e-6)
        assert result.certificate.error_bound == 0.0
        assert result.certificate.lam == 0.0
        assert result.distribution[chain.initial] == 1.0


class TestCertificateMechanics:
    def test_trivial_certificate_is_healthy_and_exact(self):
        certificate = NumericalCertificate.trivial("ctmdp.reachability", 1e-6)
        assert certificate.healthy
        assert certificate.status == "ok"
        assert certificate.error_bound == 0.0

    def test_window_matches_foxglynn(self):
        fg = fox_glynn(200.0, 1e-6)
        certificate = certificate_from_foxglynn(fg, 1e-6, "ctmdp.reachability")
        assert (certificate.left, certificate.right) == (fg.left, fg.right)
        assert certificate.lam == fg.lam
        assert certificate.dropped_mass == poisson_tail_mass(200.0, fg.left, fg.right)
        assert certificate.error_bound >= 2.0 * certificate.dropped_mass

    def test_dict_round_trip(self):
        fg = fox_glynn(50.0, 1e-8)
        certificate = certificate_from_foxglynn(
            fg, 1e-8, "ctmc.reachability", sweep_residual=1e-15
        )
        rebuilt = NumericalCertificate.from_dict(certificate.as_dict())
        assert rebuilt == certificate
        assert certificate.as_dict()["status"] == "ok"

    def test_degraded_when_dropped_mass_exceeds_epsilon(self):
        certificate = NumericalCertificate(
            algorithm="ctmdp.reachability", lam=10.0, epsilon=1e-9,
            left=0, right=5, dropped_mass=1e-3, weight_sum_deficit=0.0,
            underflow_count=0, overflow_count=0, sweep_residual=0.0,
            fp_slack=0.0, error_bound=2e-3,
        )
        assert not certificate.healthy
        assert certificate.status == "degraded"
        assert "degraded" in certificate.describe()

    def test_record_and_health_summary(self):
        metrics = MetricStore()
        fg = fox_glynn(100.0, 1e-6)
        record_certificate(metrics, certificate_from_foxglynn(fg, 1e-6, "ctmdp.reachability"))
        summary = health_summary(metrics)
        assert summary["status"] == "ok"
        assert summary["certificates"]["total"] == 1
        assert summary["certificates"]["degraded"] == 0
        assert summary["certificates"]["last_error_bound"] > 0.0

        degraded = NumericalCertificate(
            algorithm="ctmdp.reachability", lam=10.0, epsilon=1e-9,
            left=0, right=5, dropped_mass=1e-3, weight_sum_deficit=0.0,
            underflow_count=2, overflow_count=0, sweep_residual=0.0,
            fp_slack=0.0, error_bound=2e-3,
        )
        record_certificate(metrics, degraded)
        summary = health_summary(metrics)
        assert summary["status"] == "degraded"
        assert summary["certificates"]["degraded"] == 1
        assert summary["certificates"]["underflows"] == 2
        # The worst bound is kept by the _max gauge merge rule.
        assert summary["certificates"]["max_error_bound"] == pytest.approx(2e-3)

    def test_poisson_tail_mass_degenerate(self):
        assert poisson_tail_mass(0.0, 0, 0) == 0.0
        assert poisson_tail_mass(10.0, 0, 10_000) == pytest.approx(0.0, abs=1e-15)
        assert math.isclose(
            poisson_tail_mass(10.0, 0, 0), 1.0 - math.exp(-10.0), rel_tol=1e-12
        )


class TestCertificatesInEngineAndLogic:
    def test_batch_results_carry_certificates(self):
        batch = run_batch(
            [
                Query(model={"family": "ftwc", "n": 1}, t=10.0),
                Query(model={"family": "ftwc-ctmc", "n": 1}, t=10.0),
                Query(model={"family": "ftwc", "n": 1}, t=0.0),
            ]
        )
        kinds = [result.certificate.algorithm for result in batch.results]
        assert kinds == ["ctmdp.reachability", "ctmc.reachability", "ctmdp.reachability"]
        assert all(result.certificate.healthy for result in batch.results)
        document = batch.as_dict()
        assert document["results"][0]["certificate"]["status"] == "ok"
        assert document["metrics"]["counters"]["certificates_total"] == 3
        # The trivial t=0 query certifies an exact answer.
        assert batch.results[2].certificate.error_bound == 0.0

    def test_failed_query_has_no_certificate(self):
        batch = run_batch([Query(model={"family": "ftwc", "n": 1}, t=10.0, goal="nope")])
        assert batch.results[0].certificate is None
        assert batch.as_dict()["results"][0]["certificate"] is None

    def test_check_result_carries_certificate(self):
        model = ftwc_direct.build_ctmdp(1)
        labels = {"no_premium": model.goal_mask}
        result = check('Pmax=? [ F<=100 "no_premium" ]', model.ctmdp, labels)
        assert result.certificate is not None
        assert result.certificate.algorithm == "ctmdp.reachability"
        assert result.certificate.healthy

    def test_check_ctmc_until_carries_certificate(self):
        chain, _configs, goal = ftwc_direct.build_ctmc(1)
        labels = {"goal": goal, "safe": np.ones(chain.num_states, dtype=bool)}
        result = check('P=? [ "safe" U<=50 "goal" ]', chain, labels)
        assert result.certificate is not None
        assert result.certificate.algorithm == "ctmc.reachability"

    def test_steady_state_carries_certificate(self):
        # Historically certificate-less (a ROADMAP open item); the
        # steady-state solver now certifies its balance residual.
        chain, _configs, goal = ftwc_direct.build_ctmc(1)
        result = check('S=? [ "goal" ]', chain, {"goal": goal})
        assert result.certificate is not None
        assert result.certificate.algorithm == "ctmc.steady_state"
        assert result.certificate.healthy
        assert result.certificate.error_bound < 1e-9

    def test_expected_time_carries_certificate(self):
        model = ftwc_direct.build_ctmdp(1)
        labels = {"no_premium": model.goal_mask}
        result = check('Tmin=? [ F "no_premium" ]', model.ctmdp, labels)
        assert result.certificate is not None
        assert result.certificate.algorithm == "ctmdp.expected_time"
        assert result.certificate.healthy
