"""Integration: the instrumented pipeline produces meaningful traces,
``repro profile`` renders them, and ``repro serve`` exposes metrics."""

import io
import json

import numpy as np
import pytest

from repro.cli import main
from repro.core.ctmdp import CTMDP
from repro.core.reachability import timed_reachability
from repro.engine.serve import serve
from repro.engine.solver import QueryEngine
from repro.obs import tracing
from repro.obs.profile import profile_query


def small_model() -> CTMDP:
    return CTMDP.from_transitions(
        3,
        [
            (0, "a", {1: 2.0, 2: 1.0}),
            (0, "b", {2: 3.0}),
            (1, "c", {1: 3.0}),
            (2, "d", {0: 3.0}),
        ],
    )


class TestSolverTracing:
    def test_sweep_span_with_step_summary(self):
        model = small_model()
        with tracing() as tracer:
            result = timed_reachability(model, [1], 2.0, epsilon=1e-8)
        names = [s.name for s in tracer.spans]
        assert "foxglynn" in names
        assert "reachability.sweep" in names
        sweep = next(s for s in tracer.spans if s.name == "reachability.sweep")
        assert sweep.attributes["iterations"] == result.iterations
        steps = sweep.attributes["steps"]
        assert steps["steps"] == result.iterations
        assert steps["steps_per_second"] > 0.0

    def test_untraced_solve_matches_traced_solve_bitwise(self):
        """Instrumentation must never change the numbers."""
        model = small_model()
        plain = timed_reachability(model, [1], 2.0, epsilon=1e-8)
        with tracing():
            traced = timed_reachability(model, [1], 2.0, epsilon=1e-8)
        np.testing.assert_array_equal(plain.values, traced.values)

    def test_engine_query_produces_phase_spans(self):
        engine = QueryEngine()
        from repro.engine.plan import Query

        with tracing() as tracer:
            batch = engine.run([Query(model={"family": "ftwc", "n": 1}, t=10.0)])
        assert batch.results[0].ok
        names = {s.name for s in tracer.spans}
        assert {"registry.get", "registry.build", "solver.prepare", "solver.solve"} <= names

    def test_until_sweep_records_step_histogram(self):
        """The until sweep shares the reachability instrumentation."""
        from repro.core.until import timed_until

        model = small_model()
        safe = np.ones(3, dtype=bool)
        goal = np.zeros(3, dtype=bool)
        goal[1] = True
        with tracing() as tracer:
            result = timed_until(model, safe, goal, 2.0, epsilon=1e-8)
        sweep = next(s for s in tracer.spans if s.name == "until.sweep")
        steps = sweep.attributes["steps"]
        assert steps["steps"] == result.iterations > 0
        assert "histogram" in steps

    def test_vi_sweep_records_step_histogram(self):
        """MDP value iteration sweeps carry the same per-step summary."""
        from repro.mdp.model import DTMDP
        from repro.mdp.value_iteration import bounded_reachability, unbounded_reachability

        mdp = DTMDP.from_transitions(
            3,
            [
                (0, "a", {1: 0.5, 2: 0.5}),
                (1, "b", {1: 1.0}),
                (2, "c", {0: 1.0}),
            ],
        )
        with tracing() as tracer:
            bounded_reachability(mdp, [1], steps=7)
            unbounded_reachability(mdp, [1])
        sweeps = [s for s in tracer.spans if s.name == "vi.sweep"]
        assert [s.attributes["kind"] for s in sweeps] == ["bounded", "unbounded"]
        assert sweeps[0].attributes["steps"]["steps"] == 7
        assert sweeps[1].attributes["steps"]["steps"] > 0


class TestProfile:
    def test_profile_query_report(self):
        report = profile_query(family="ftwc", n=1, t=10.0)
        rendered = report.render()
        assert "registry.build" in rendered
        assert "reachability.sweep" in rendered
        assert "phase" in rendered
        assert report.value > 0.0
        assert report.iterations > 0

    def test_profile_cli(self, capsys):
        assert main(["profile", "ftwc", "--n", "1", "--t", "10"]) == 0
        out = capsys.readouterr().out
        assert "registry.build" in out
        assert "sweep steps:" in out

    def test_profile_cli_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["profile", "ftwc", "--n", "1", "--t", "10", "--trace-out", str(trace)]
        )
        assert code == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["name"] == "reachability.sweep" for r in records)


class TestProfileFanOut:
    def test_worker_spans_merge_into_profile_trace(self):
        """A process-pool profile run contains the worker-side sweep
        spans, adopted into the parent trace under one trace id."""
        report = profile_query(family="ftwc", t=10.0, ns=[1, 2], workers=2)
        worker_spans = [
            s for s in report.tracer.spans if "worker_pid" in s.attributes
        ]
        assert worker_spans, "no worker spans were adopted"
        assert {s.attributes["worker_pid"] for s in worker_spans} != set()
        sweep_spans = [s for s in worker_spans if s.name == "reachability.sweep"]
        assert len(sweep_spans) == 2  # one per model group
        records = report.tracer.as_dicts()
        assert {r["trace_id"] for r in records} == {report.tracer.trace_id}
        rendered = report.render()
        assert "worker_pid=" in rendered

    def test_profile_cli_with_workers(self, capsys):
        code = main(
            ["profile", "ftwc", "--ns", "1", "2", "--workers", "2", "--t", "10"]
        )
        assert code == 0
        assert "worker_pid=" in capsys.readouterr().out


class TestServeMetrics:
    def _run(self, lines: list[str]) -> list[str]:
        sink = io.StringIO()
        serve(input_stream=io.StringIO("\n".join(lines) + "\n"), output_stream=sink)
        return sink.getvalue().splitlines()

    def test_metrics_endpoint_prometheus_text(self):
        out = self._run(
            [
                json.dumps({"op": "query", "model": {"family": "ftwc", "n": 1}, "t": 5.0}),
                "/metrics",
                json.dumps({"op": "shutdown"}),
            ]
        )
        body = "\n".join(out)
        assert "repro_queries_total_total 1" in body
        assert "# EOF" in body

    def test_metrics_op_prometheus_format(self):
        out = self._run(
            [
                json.dumps({"op": "metrics", "format": "prometheus"}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        payload = json.loads(out[0])
        assert payload["text"].endswith("# EOF\n")

    def test_metrics_op_json_unchanged(self):
        out = self._run(
            [json.dumps({"op": "metrics"}), json.dumps({"op": "shutdown"})]
        )
        assert "metrics" in json.loads(out[0])

    def test_query_response_carries_certificate(self):
        out = self._run(
            [
                json.dumps({"op": "query", "model": {"family": "ftwc", "n": 1}, "t": 5.0}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        record = json.loads(out[0])
        assert record["certificate"]["status"] == "ok"
        assert record["certificate"]["error_bound"] >= 0.0


class TestServeHttp:
    def test_serve_starts_and_stops_http_listener(self):
        import re
        import urllib.request
        from contextlib import redirect_stderr

        from repro.engine.solver import QueryEngine

        # Drive the loop manually: issue a query, scrape over HTTP while
        # the loop is alive, then shut down and check the port is freed.
        import threading

        request_lines = [
            json.dumps({"op": "query", "model": {"family": "ftwc", "n": 1}, "t": 5.0}),
        ]

        class _Feed:
            """Blocking line source that releases lines on demand."""

            def __init__(self):
                self._lines = []
                self._event = threading.Event()
                self._closed = False

            def push(self, line):
                self._lines.append(line)
                self._event.set()

            def close(self):
                self._closed = True
                self._event.set()

            def __iter__(self):
                while True:
                    self._event.wait()
                    if self._lines:
                        yield self._lines.pop(0) + "\n"
                        if not self._lines:
                            self._event.clear()
                    elif self._closed:
                        return

        feed = _Feed()
        sink = io.StringIO()
        stderr = io.StringIO()
        engine = QueryEngine()

        def run():
            with redirect_stderr(stderr):
                serve(engine=engine, input_stream=feed, output_stream=sink,
                      http_port=0)

        thread = threading.Thread(target=run)
        thread.start()
        try:
            for line in request_lines:
                feed.push(line)
            # Wait for the listener announcement, then scrape.
            for _ in range(200):
                match = re.search(r"http://[\d.]+:(\d+)", stderr.getvalue())
                if match:
                    break
                thread.join(0.02)
            assert match, "telemetry URL was never announced"
            port = int(match.group(1))
            for _ in range(200):
                if "repro_queries_total_total 1" in urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=5.0
                ).read().decode():
                    break
                thread.join(0.02)
            health = json.loads(
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/healthz", timeout=5.0
                ).read()
            )
            assert health["status"] == "ok"
        finally:
            feed.push(json.dumps({"op": "shutdown"}))
            feed.close()
            thread.join(timeout=10.0)
        assert not thread.is_alive()
        import socket

        with pytest.raises(OSError):
            socket.create_connection(("127.0.0.1", port), timeout=0.5).close()


class TestObsServerCli:
    def test_obs_server_answers_workload_then_exits(self, tmp_path, capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(
            json.dumps(
                {
                    "defaults": {"model": {"family": "ftwc", "n": 1}},
                    "queries": [{"t": 5.0}, {"t": 10.0}],
                }
            ),
            encoding="utf-8",
        )
        code = main(
            [
                "obs-server", "--port", "0", "--queries", str(queries),
                "--duration", "0", "--no-disk-cache",
            ]
        )
        assert code == 0
        err = capsys.readouterr().err
        assert "telemetry listening on http://127.0.0.1:" in err
        assert "answered 2 queries (0 failed)" in err

    def test_obs_server_rejects_bad_workload(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json", encoding="utf-8")
        code = main(
            ["obs-server", "--port", "0", "--queries", str(bad),
             "--duration", "0", "--no-disk-cache"]
        )
        assert code == 2


class TestOverheadShape:
    def test_disabled_span_is_cheap_relative_to_work(self):
        """Coarse sanity guard (the precise budget lives in
        benchmarks/test_bench_obs.py): a million disabled span entries
        must cost well under a second."""
        import time

        from repro.obs import span

        started = time.perf_counter()
        for _ in range(1_000_000):
            with span("hot"):
                pass
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0
