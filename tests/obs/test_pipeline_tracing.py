"""Integration: the instrumented pipeline produces meaningful traces,
``repro profile`` renders them, and ``repro serve`` exposes metrics."""

import io
import json

import numpy as np

from repro.cli import main
from repro.core.ctmdp import CTMDP
from repro.core.reachability import timed_reachability
from repro.engine.serve import serve
from repro.engine.solver import QueryEngine
from repro.obs import tracing
from repro.obs.profile import profile_query


def small_model() -> CTMDP:
    return CTMDP.from_transitions(
        3,
        [
            (0, "a", {1: 2.0, 2: 1.0}),
            (0, "b", {2: 3.0}),
            (1, "c", {1: 3.0}),
            (2, "d", {0: 3.0}),
        ],
    )


class TestSolverTracing:
    def test_sweep_span_with_step_summary(self):
        model = small_model()
        with tracing() as tracer:
            result = timed_reachability(model, [1], 2.0, epsilon=1e-8)
        names = [s.name for s in tracer.spans]
        assert "foxglynn" in names
        assert "reachability.sweep" in names
        sweep = next(s for s in tracer.spans if s.name == "reachability.sweep")
        assert sweep.attributes["iterations"] == result.iterations
        steps = sweep.attributes["steps"]
        assert steps["steps"] == result.iterations
        assert steps["steps_per_second"] > 0.0

    def test_untraced_solve_matches_traced_solve_bitwise(self):
        """Instrumentation must never change the numbers."""
        model = small_model()
        plain = timed_reachability(model, [1], 2.0, epsilon=1e-8)
        with tracing():
            traced = timed_reachability(model, [1], 2.0, epsilon=1e-8)
        np.testing.assert_array_equal(plain.values, traced.values)

    def test_engine_query_produces_phase_spans(self):
        engine = QueryEngine()
        from repro.engine.plan import Query

        with tracing() as tracer:
            batch = engine.run([Query(model={"family": "ftwc", "n": 1}, t=10.0)])
        assert batch.results[0].ok
        names = {s.name for s in tracer.spans}
        assert {"registry.get", "registry.build", "solver.prepare", "solver.solve"} <= names


class TestProfile:
    def test_profile_query_report(self):
        report = profile_query(family="ftwc", n=1, t=10.0)
        rendered = report.render()
        assert "registry.build" in rendered
        assert "reachability.sweep" in rendered
        assert "phase" in rendered
        assert report.value > 0.0
        assert report.iterations > 0

    def test_profile_cli(self, capsys):
        assert main(["profile", "ftwc", "--n", "1", "--t", "10"]) == 0
        out = capsys.readouterr().out
        assert "registry.build" in out
        assert "sweep steps:" in out

    def test_profile_cli_trace_out(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        code = main(
            ["profile", "ftwc", "--n", "1", "--t", "10", "--trace-out", str(trace)]
        )
        assert code == 0
        records = [json.loads(line) for line in trace.read_text().splitlines()]
        assert any(r["name"] == "reachability.sweep" for r in records)


class TestServeMetrics:
    def _run(self, lines: list[str]) -> list[str]:
        sink = io.StringIO()
        serve(input_stream=io.StringIO("\n".join(lines) + "\n"), output_stream=sink)
        return sink.getvalue().splitlines()

    def test_metrics_endpoint_prometheus_text(self):
        out = self._run(
            [
                json.dumps({"op": "query", "model": {"family": "ftwc", "n": 1}, "t": 5.0}),
                "/metrics",
                json.dumps({"op": "shutdown"}),
            ]
        )
        body = "\n".join(out)
        assert "repro_queries_total_total 1" in body
        assert "# EOF" in body

    def test_metrics_op_prometheus_format(self):
        out = self._run(
            [
                json.dumps({"op": "metrics", "format": "prometheus"}),
                json.dumps({"op": "shutdown"}),
            ]
        )
        payload = json.loads(out[0])
        assert payload["text"].endswith("# EOF\n")

    def test_metrics_op_json_unchanged(self):
        out = self._run(
            [json.dumps({"op": "metrics"}), json.dumps({"op": "shutdown"})]
        )
        assert "metrics" in json.loads(out[0])


class TestOverheadShape:
    def test_disabled_span_is_cheap_relative_to_work(self):
        """Coarse sanity guard (the precise budget lives in
        benchmarks/test_bench_obs.py): a million disabled span entries
        must cost well under a second."""
        import time

        from repro.obs import span

        started = time.perf_counter()
        for _ in range(1_000_000):
            with span("hot"):
                pass
        elapsed = time.perf_counter() - started
        assert elapsed < 2.0
