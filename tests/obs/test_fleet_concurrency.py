"""Seeded-interleaving concurrency tests for the telemetry stores.

The real :class:`~repro.obs.fleet.FleetStore` and
:class:`~repro.obs.http.SpanLog` serve a threaded HTTP server: pushes,
federation scrapes, staleness sweeps and trace exports genuinely race.
These tests swap each store's ``_lock`` for a harness
:class:`~repro.tsan.harness.CooperativeLock` and drive the *same
shipped code* through adversarial, line-level interleavings — every
seed must leave the store consistent, and the whole schedule is a pure
function of the seed, so a failure here replays exactly in CI.
"""

import repro.obs.fleet as fleet_mod
import repro.obs.http as http_mod
from repro.obs.fleet import FleetStore
from repro.obs.http import SpanLog
from repro.obs.metrics import MetricStore
from repro.tsan.harness import InterleavingHarness

#: Seeds replayed here and by the CI ``tsan`` job.
SEEDS = range(8)


def snapshot(queries: int = 3) -> dict:
    store = MetricStore()
    store.count("queries_total", queries)
    store.count("certificates_total", queries)
    return store.as_dict()


def harnessed_fleet(seed: int) -> tuple[InterleavingHarness, FleetStore]:
    harness = InterleavingHarness(seed=seed)
    store = FleetStore(staleness_seconds=10.0)
    store._lock = harness.lock("FleetStore._lock")
    harness.trace(fleet_mod)
    return harness, store


class TestFleetStoreInterleavings:
    def scenario(self, seed: int):
        """Pusher + federation scraper + failing target, interleaved."""
        harness, store = harnessed_fleet(seed)
        expositions: list[str] = []
        verdicts: list[dict] = []
        push_states: list = []

        def pusher() -> None:
            for round_ in range(3):
                push_states.append(
                    store.record_push("w1", snapshot(queries=round_ + 1), now=100.0)
                )

        def scraper() -> None:
            store.record_scrape("s1", snapshot(queries=9), now=100.0)
            expositions.append(store.exposition(now=101.0))
            verdicts.append(store.health(now=101.0))

        def failing() -> None:
            for _ in range(2):
                store.record_failure("s2", "connection refused", now=100.0)

        harness.add(pusher, name="pusher")
        harness.add(scraper, name="scraper")
        harness.add(failing, name="failing")
        result = harness.run()
        return result, store, expositions, verdicts, push_states

    def test_every_seed_leaves_store_consistent(self):
        for seed in SEEDS:
            result, store, expositions, verdicts, push_states = self.scenario(seed)
            assert result.ok, (seed, result.errors)
            assert store.instances() == ["s1", "s2", "w1"]
            # Final-state invariants survive every interleaving: all
            # three pushes landed on the same live SourceState record.
            assert push_states[-1].pushes == 3
            assert push_states[-1].up is True
            assert store.as_dict(now=101.0)["sources"]["w1"]["up"] is True
            assert store.failure_count("s2") == 2
            # The exposition rendered mid-race is well-formed.
            [exposition] = expositions
            assert 'instance="s1"' in exposition
            assert exposition.endswith("\n")
            [verdict] = verdicts
            assert verdict["sources"]["s1"]["status"] == "ok"

    def test_schedule_is_deterministic(self):
        first, *_ = self.scenario(5)
        second, *_ = self.scenario(5)
        assert first.schedule == second.schedule
        assert first.switches == second.switches

    def test_forget_races_against_push(self):
        # A sweep dropping an instance concurrently with a re-push must
        # end in one of the two serializable outcomes, never a torn one.
        for seed in SEEDS:
            harness, store = harnessed_fleet(seed)
            store.record_push("w", snapshot(), now=50.0)
            pushed: list = []

            harness.add(
                lambda: pushed.append(store.record_push("w", snapshot(), now=60.0))
            )
            harness.add(lambda: store.forget("w"))
            result = harness.run()
            assert result.ok, (seed, result.errors)
            assert store.instances() in ([], ["w"])
            # Push-then-forget leaves [], forget-then-push a fresh state
            # with one push; the pre-existing record means two otherwise.
            [state] = pushed
            assert state.pushes in (1, 2)


class TestSpanLogInterleavings:
    def test_concurrent_extend_and_tail(self):
        # Two workers exporting span batches while a reader tails: no
        # torn records, both batches complete, reader sees a prefix.
        for seed in SEEDS:
            harness = InterleavingHarness(seed=seed)
            log = SpanLog(maxlen=64)
            log._lock = harness.lock("SpanLog._lock")
            harness.trace(http_mod)
            tails: list[list[dict]] = []

            def exporter(worker: str) -> None:
                for index in range(4):
                    log.extend([{"name": f"{worker}-{index}", "worker": worker}])

            harness.add(lambda: exporter("a"), name="exporter-a")
            harness.add(lambda: exporter("b"), name="exporter-b")
            harness.add(lambda: tails.append(log.tail(limit=100)), name="reader")
            result = harness.run()
            assert result.ok, (seed, result.errors)
            assert len(log) == 8
            names = [record["name"] for record in log.tail()]
            # Each worker's records stay in its own export order.
            for worker in ("a", "b"):
                own = [n for n in names if n.startswith(worker)]
                assert own == sorted(own)
            # The mid-race tail saw some consistent prefix interleaving.
            [seen] = tails
            assert len(seen) <= 8

    def test_ring_bound_holds_under_interleaving(self):
        for seed in SEEDS:
            harness = InterleavingHarness(seed=seed)
            log = SpanLog(maxlen=5)
            log._lock = harness.lock("SpanLog._lock")
            harness.trace(http_mod)

            def exporter(worker: str) -> None:
                log.extend({"name": f"{worker}-{i}"} for i in range(4))

            harness.add(lambda: exporter("a"))
            harness.add(lambda: exporter("b"))
            result = harness.run()
            assert result.ok, (seed, result.errors)
            assert len(log) == 5  # bounded, newest kept
