"""Integration test: the paper's full trajectory on one small system.

Walks every step of the paper in order -- phase-type time constraints
(Section 2), elapse + parallel composition + hiding with uniformity
preserved at each step (Section 3), stochastic branching bisimulation
minimisation (Definition 6), the strictly-alternating transformation to
a uniform CTMDP (Section 4.1), Algorithm 1 (Section 4.2) -- and
cross-checks the final numbers against independent machinery (CTMC
solver, Monte-Carlo simulation of the untransformed IMC).
"""

import numpy as np
import pytest

from repro.bisim import are_branching_bisimilar, branching_minimize
from repro.bisim.quotient import map_labels_through
from repro.core import timed_reachability
from repro.ctmc import PhaseType
from repro.imc import elapse, hide_all_but, imc_to_ctmdp, lts, parallel
from repro.imc.model import StateClass
from repro.sim.imc_sim import random_resolver, simulate_imc_reachability


@pytest.fixture(scope="module")
def pipeline():
    """A machine with phase-type failure and repair clocks plus an
    operator who must acknowledge repairs (the nondeterminism: the
    operator may attend the machine or take a break first)."""
    machine = lts(
        3,
        [(0, "fail", 1), (1, "repair", 2), (2, "ack", 0)],
        state_names=["up", "down", "fixed"],
    )
    fail_clock = elapse(PhaseType.erlang(2, 1.0), fire="fail", reset="ack")
    repair_clock = elapse(
        PhaseType.exponential(4.0), fire="repair", reset="fail", started=False
    )
    operator = lts(
        2,
        [(0, "ack", 0), (0, "break", 1), (1, "back", 0)],
        state_names=["present", "away"],
    )
    break_clock = elapse(
        PhaseType.exponential(0.5), fire="back", reset="break", started=False
    )

    system = parallel(machine, fail_clock, sync=["fail", "ack"])
    system = parallel(system, repair_clock, sync=["fail", "repair"])
    system = parallel(system, operator, sync=["ack"])
    system = parallel(system, break_clock, sync=["break", "back"])
    return hide_all_but(system)


class TestPaperPipeline:
    def test_step1_composition_is_uniform_by_construction(self, pipeline):
        # Lemma 2: the uniform rates of the three clocks add up.
        assert pipeline.is_uniform(closed=True)
        assert pipeline.uniform_rate(closed=True) == pytest.approx(1.0 + 4.0 + 0.5)

    def test_step2_minimisation_preserves_everything(self, pipeline):
        labels = [pipeline.name_of(s).startswith("down") for s in range(pipeline.num_states)]
        quotient, partition = branching_minimize(pipeline, labels=labels)
        assert quotient.num_states < pipeline.num_states
        # Lemma 3 / Corollary 1.
        assert quotient.is_uniform(closed=True)
        assert quotient.uniform_rate(closed=True) == pytest.approx(5.5)
        # Definition 6 on the union: quotient ~ original.
        assert are_branching_bisimilar(
            pipeline, quotient, labels, map_labels_through(partition, labels)
        )

    def test_step3_transformation_is_strictly_alternating(self, pipeline):
        result = imc_to_ctmdp(pipeline, require_uniform=True)
        alt = result.alternation.imc
        for state in range(alt.num_states):
            assert alt.state_class(state) in (StateClass.MARKOV, StateClass.INTERACTIVE)
        assert result.ctmdp.is_uniform(tol=1e-9)
        assert result.ctmdp.uniform_rate() == pytest.approx(5.5)

    def test_step4_analysis_and_cross_validation(self, pipeline, rng):
        result = imc_to_ctmdp(pipeline, require_uniform=True)
        down_states = {
            s for s in range(pipeline.num_states) if pipeline.name_of(s).startswith("down")
        }
        mask = result.goal_mask_from_predicate(lambda s: s in down_states, via="markov")
        t = 2.0
        sup = timed_reachability(result.ctmdp, mask, t, epsilon=1e-9)
        inf = timed_reachability(result.ctmdp, mask, t, epsilon=1e-9, objective="min")
        assert 0.0 < inf.value(result.ctmdp.initial) <= sup.value(result.ctmdp.initial) < 1.0

        estimate = simulate_imc_reachability(
            pipeline, down_states, t, resolver=random_resolver(rng), runs=4000, rng=rng
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= sup.value(result.ctmdp.initial) + 1e-9
        assert high >= inf.value(result.ctmdp.initial) - 1e-9

    def test_minimised_and_original_analyses_agree(self, pipeline):
        labels = [pipeline.name_of(s).startswith("down") for s in range(pipeline.num_states)]
        quotient, partition = branching_minimize(pipeline, labels=labels)
        quotient_labels = map_labels_through(partition, labels)

        original = imc_to_ctmdp(pipeline, require_uniform=True)
        reduced = imc_to_ctmdp(quotient, require_uniform=True)
        mask_original = original.goal_mask_from_predicate(lambda s: labels[s], via="markov")
        mask_reduced = reduced.goal_mask_from_predicate(
            lambda s: quotient_labels[s], via="markov"
        )
        for objective in ("max", "min"):
            for t in (0.5, 3.0):
                value_original = timed_reachability(
                    original.ctmdp, mask_original, t, epsilon=1e-9, objective=objective
                ).value(original.ctmdp.initial)
                value_reduced = timed_reachability(
                    reduced.ctmdp, mask_reduced, t, epsilon=1e-9, objective=objective
                ).value(reduced.ctmdp.initial)
                assert value_reduced == pytest.approx(value_original, abs=1e-7)
