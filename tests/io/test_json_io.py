"""Tests for JSON model persistence."""

import json

import numpy as np
import pytest

from repro.errors import ModelError
from repro.imc.model import IMC, TAU
from repro.io.json_io import (
    ctmc_from_json,
    ctmc_to_json,
    ctmdp_from_json,
    ctmdp_to_json,
    imc_from_json,
    imc_to_json,
    load_model,
    save_model,
)
from repro.models.zoo import queue_with_breakdowns, two_phase_race_ctmdp


class TestRoundTrips:
    def test_imc(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, "a", 1), (1, TAU, 2)],
            markov=[(2, 1.5, 0)],
            initial=0,
            state_names=["x", "y", "z"],
        )
        loaded = imc_from_json(imc_to_json(imc))
        assert loaded.num_states == imc.num_states
        assert loaded.interactive == imc.interactive
        assert loaded.markov == imc.markov
        assert loaded.state_names == imc.state_names

    def test_ctmc(self):
        chain, _ = queue_with_breakdowns(capacity=2)
        loaded = ctmc_from_json(ctmc_to_json(chain))
        np.testing.assert_allclose(loaded.rates.toarray(), chain.rates.toarray())
        assert loaded.initial == chain.initial
        assert loaded.state_names == chain.state_names

    def test_ctmdp(self):
        ctmdp, _ = two_phase_race_ctmdp()
        loaded = ctmdp_from_json(ctmdp_to_json(ctmdp))
        assert loaded.labels == ctmdp.labels
        np.testing.assert_allclose(
            loaded.rate_matrix.toarray(), ctmdp.rate_matrix.toarray()
        )
        assert loaded.initial == ctmdp.initial

    def test_analysis_survives_round_trip(self, tmp_path):
        from repro.core.reachability import timed_reachability
        from repro.models.ftwc_direct import build_ctmdp

        model = build_ctmdp(1)
        path = tmp_path / "ftwc.json"
        save_model(model.ctmdp, path)
        loaded = load_model(path)
        before = timed_reachability(model.ctmdp, model.goal_mask, 100.0).value(0)
        after = timed_reachability(loaded, model.goal_mask, 100.0).value(0)
        assert after == pytest.approx(before, abs=1e-15)


class TestFileLayer:
    def test_save_load_autodetects_kind(self, tmp_path):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 1.0, 0)])
        path = tmp_path / "model.json"
        save_model(imc, path)
        loaded = load_model(path)
        assert isinstance(loaded, IMC)

    def test_file_is_valid_json(self, tmp_path):
        chain, _ = queue_with_breakdowns(capacity=1)
        path = tmp_path / "chain.json"
        save_model(chain, path)
        data = json.loads(path.read_text())
        assert data["format"] == "repro-model"
        assert data["kind"] == "ctmc"

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"format": "repro-model", "version": 1, "kind": "dtmc"}')
        with pytest.raises(ModelError):
            load_model(path)

    def test_wrong_format_rejected(self):
        with pytest.raises(ModelError):
            imc_from_json({"format": "something-else"})

    def test_wrong_version_rejected(self):
        with pytest.raises(ModelError):
            imc_from_json({"format": "repro-model", "version": 99, "kind": "imc"})

    def test_kind_mismatch_rejected(self):
        chain, _ = queue_with_breakdowns(capacity=1)
        with pytest.raises(ModelError):
            imc_from_json(ctmc_to_json(chain))

    def test_unsupported_type_rejected(self, tmp_path):
        with pytest.raises(ModelError):
            save_model("not a model", tmp_path / "x.json")  # type: ignore[arg-type]
