"""Tests for .tra/.lab round trips and DOT export."""

import numpy as np
import pytest

from repro.ctmc.model import CTMC
from repro.errors import ModelError
from repro.io.dot import ctmc_to_dot, ctmdp_to_dot, imc_to_dot, write_dot
from repro.io.tra import (
    read_ctmc_tra,
    read_ctmdp_tra,
    read_labels,
    write_ctmc_tra,
    write_ctmdp_tra,
    write_labels,
)
from repro.imc.model import IMC, TAU
from repro.models.zoo import two_phase_race_ctmdp


class TestCTMCTra:
    def test_round_trip(self, tmp_path):
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.5), (1, 2, 0.25), (2, 0, 3.0), (0, 0, 0.5)]
        )
        path = tmp_path / "chain.tra"
        write_ctmc_tra(chain, path)
        loaded = read_ctmc_tra(path)
        np.testing.assert_allclose(
            loaded.rates.toarray(), chain.rates.toarray()
        )

    def test_header_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.tra"
        path.write_text("STATES 2\nTRANSITIONS 5\n1 2 1.0\n")
        with pytest.raises(ModelError):
            read_ctmc_tra(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.tra"
        path.write_text("NOTHEADER 2\n")
        with pytest.raises(ModelError):
            read_ctmc_tra(path)


class TestCTMDPTra:
    def test_round_trip(self, tmp_path):
        ctmdp, _ = two_phase_race_ctmdp()
        path = tmp_path / "model.tra"
        write_ctmdp_tra(ctmdp, path)
        loaded = read_ctmdp_tra(path)
        assert loaded.num_states == ctmdp.num_states
        assert loaded.labels == ctmdp.labels
        assert loaded.initial == ctmdp.initial
        np.testing.assert_allclose(
            loaded.rate_matrix.toarray(), ctmdp.rate_matrix.toarray()
        )

    def test_preserves_duplicate_action_labels(self, tmp_path):
        from repro.core.ctmdp import CTMDP

        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {0: 1.0}), (0, "a", {1: 1.0}), (1, "x", {1: 1.0})]
        )
        path = tmp_path / "dup.tra"
        write_ctmdp_tra(ctmdp, path)
        loaded = read_ctmdp_tra(path)
        assert loaded.num_choices(0) == 2


class TestLabels:
    def test_round_trip(self, tmp_path):
        mask = np.array([True, False, True, False])
        path = tmp_path / "model.lab"
        write_labels(mask, "goal", path)
        loaded = read_labels(path, 4)
        np.testing.assert_array_equal(loaded["goal"], mask)

    def test_undeclared_proposition_rejected(self, tmp_path):
        path = tmp_path / "bad.lab"
        path.write_text("#DECLARATION\ngoal\n#END\n1 other\n")
        with pytest.raises(ModelError):
            read_labels(path, 2)

    def test_state_out_of_range_rejected(self, tmp_path):
        path = tmp_path / "bad.lab"
        path.write_text("#DECLARATION\ngoal\n#END\n7 goal\n")
        with pytest.raises(ModelError):
            read_labels(path, 2)


class TestDot:
    def test_imc_dot_marks_transition_kinds(self):
        imc = IMC(
            num_states=2,
            interactive=[(0, "a", 1), (1, TAU, 0)],
            markov=[(0, 2.0, 1)],
            state_names=["first", "second"],
        )
        dot = imc_to_dot(imc)
        assert "digraph" in dot
        assert "first" in dot and "second" in dot
        assert "style=dashed" in dot  # tau
        assert "style=dotted" in dot  # Markov
        assert 'label="2"' in dot

    def test_ctmc_dot(self):
        chain = CTMC.from_transitions(2, [(0, 1, 1.5)])
        dot = ctmc_to_dot(chain)
        assert 'label="1.5"' in dot

    def test_ctmdp_dot_has_decision_nodes(self):
        ctmdp, _ = two_phase_race_ctmdp()
        dot = ctmdp_to_dot(ctmdp)
        assert "shape=point" in dot
        assert "direct" in dot and "detour" in dot

    def test_write_dot(self, tmp_path):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        path = tmp_path / "chain.dot"
        write_dot(ctmc_to_dot(chain), path)
        assert path.read_text().startswith("digraph")
