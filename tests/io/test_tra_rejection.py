"""The strict ``.tra`` readers refuse pathological input.

Companion to the lenient :func:`repro.io.tra.scan_tra` scanner: the
scanner records bad values for the linter to diagnose, the readers
reject exactly those values so no NaN, infinite, non-positive rate or
dangling state index ever enters a constructed model.
"""

import math

import pytest

from repro.errors import ModelError
from repro.io.tra import read_ctmc_tra, read_ctmdp_tra, scan_tra


def ctmc_file(tmp_path, body, declared=None, states=2):
    lines = body.strip().splitlines()
    count = declared if declared is not None else len(lines)
    path = tmp_path / "chain.tra"
    path.write_text(
        f"STATES {states}\nTRANSITIONS {count}\n" + "\n".join(lines) + "\n"
    )
    return path


def ctmdp_file(tmp_path, body, declared=None, states=2, initial=1):
    lines = body.strip().splitlines()
    count = declared if declared is not None else len({l.split()[0] for l in lines})
    path = tmp_path / "mdp.tra"
    path.write_text(
        f"STATES {states}\nCHOICES {count}\nINITIAL {initial}\n"
        + "\n".join(lines)
        + "\n"
    )
    return path


class TestCtmcRejection:
    @pytest.mark.parametrize("rate", ["nan", "inf", "-inf", "-1.0", "0.0"])
    def test_pathological_rates_refused(self, tmp_path, rate):
        path = ctmc_file(tmp_path, f"1 2 {rate}\n2 1 1.0")
        with pytest.raises(ModelError, match="positive finite"):
            read_ctmc_tra(path)

    def test_dangling_target_refused(self, tmp_path):
        path = ctmc_file(tmp_path, "1 3 1.0\n2 1 1.0")
        with pytest.raises(ModelError, match="out of range"):
            read_ctmc_tra(path)

    def test_dangling_source_refused(self, tmp_path):
        path = ctmc_file(tmp_path, "9 1 1.0\n2 1 1.0")
        with pytest.raises(ModelError, match="out of range"):
            read_ctmc_tra(path)

    def test_count_mismatch_refused(self, tmp_path):
        path = ctmc_file(tmp_path, "1 2 1.0", declared=5)
        with pytest.raises(ModelError, match="announced 5"):
            read_ctmc_tra(path)

    def test_unparseable_rate_refused(self, tmp_path):
        path = ctmc_file(tmp_path, "1 2 fast")
        with pytest.raises(ModelError, match="unparseable rate"):
            read_ctmc_tra(path)

    def test_unparseable_index_refused(self, tmp_path):
        path = ctmc_file(tmp_path, "one 2 1.0")
        with pytest.raises(ModelError, match="unparseable state index"):
            read_ctmc_tra(path)

    def test_kind_mismatch_refused(self, tmp_path):
        path = ctmdp_file(tmp_path, "1 a 1 2 1.0")
        with pytest.raises(ModelError, match="expected a CTMC"):
            read_ctmc_tra(path)


class TestCtmdpRejection:
    @pytest.mark.parametrize("rate", ["nan", "inf", "-2.5", "0.0"])
    def test_pathological_rates_refused(self, tmp_path, rate):
        path = ctmdp_file(tmp_path, f"1 a 1 2 {rate}")
        with pytest.raises(ModelError, match="positive finite"):
            read_ctmdp_tra(path)

    def test_dangling_target_refused(self, tmp_path):
        path = ctmdp_file(tmp_path, "1 a 1 7 1.0\n2 a 2 1 1.0")
        with pytest.raises(ModelError):
            read_ctmdp_tra(path)

    def test_inconsistent_row_metadata_refused(self, tmp_path):
        path = ctmdp_file(tmp_path, "1 a 1 2 1.0\n1 b 1 1 1.0")
        with pytest.raises(ModelError, match="inconsistent"):
            read_ctmdp_tra(path)

    def test_count_mismatch_refused(self, tmp_path):
        path = ctmdp_file(tmp_path, "1 a 1 2 1.0", declared=3)
        with pytest.raises(ModelError, match="announced 3"):
            read_ctmdp_tra(path)

    def test_kind_mismatch_refused(self, tmp_path):
        path = ctmc_file(tmp_path, "1 2 1.0")
        with pytest.raises(ModelError, match="expected a CTMDP"):
            read_ctmdp_tra(path)


class TestScannerLeniency:
    """scan_tra preserves bad values instead of rejecting them."""

    def test_nan_rate_preserved(self, tmp_path):
        path = ctmc_file(tmp_path, "1 2 nan")
        scan = scan_tra(path)
        assert scan.kind == "ctmc"
        assert math.isnan(scan.ctmc_entries[0][2])

    def test_dangling_index_preserved(self, tmp_path):
        path = ctmc_file(tmp_path, "1 9 1.0")
        scan = scan_tra(path)
        assert scan.ctmc_entries[0][1] == 8  # 0-based, out of range

    def test_shape_errors_still_raise(self, tmp_path):
        path = tmp_path / "bad.tra"
        path.write_text("STATES 2\nTRANSITIONS 1\n1 2\n")
        with pytest.raises(ModelError, match="expected 'src dst rate'"):
            scan_tra(path)
