"""Planted defect: bare float equality against a non-integral literal (T004).

``0.1 + 0.2 == 0.3`` is the canonical binary-float trap; rate
comparisons must go through a tolerance (``math.isclose`` or the
quantised rate signatures of ``repro.bisim.signatures``).
"""

from __future__ import annotations


def is_service_rate(rate: float) -> bool:
    # BUG: exact equality on a non-representable decimal.
    return rate == 0.3


def is_not_service_rate(rate: float) -> bool:
    # BUG: same trap through !=.
    return rate != 0.3
