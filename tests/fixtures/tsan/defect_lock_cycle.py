"""Planted defect: two locks taken in opposite nested orders (T002).

``transfer`` locks the ledger then the journal; ``audit`` locks the
journal then the ledger.  Either order alone is fine -- together they
form a cycle in the lock-order graph, i.e. a potential deadlock when
the two methods race.  ``repro lint defect_lock_cycle.py`` must report
``T002`` naming both locks.
"""

from __future__ import annotations

import threading

from repro.tsan import guarded_by


@guarded_by("_ledger_lock", "_balance")
@guarded_by("_journal_lock", "_journal")
class CyclicLedger:
    """Ledger + journal with inconsistent nested lock order."""

    def __init__(self) -> None:
        self._ledger_lock = threading.Lock()
        self._journal_lock = threading.Lock()
        self._balance = 0
        self._journal: list[str] = []

    def transfer(self, amount: int) -> None:
        # Order: ledger -> journal.
        with self._ledger_lock:
            self._balance += amount
            with self._journal_lock:
                self._journal.append(f"transfer {amount}")

    def audit(self) -> tuple[int, int]:
        # BUG: opposite order, journal -> ledger.
        with self._journal_lock:
            entries = len(self._journal)
            with self._ledger_lock:
                return self._balance, entries
