"""Planted defect: a lock attribute with no ``@guarded_by`` declaration (T003).

The class owns ``self._lock`` but never declares which attributes the
lock guards, so the T001 pass has nothing to check -- the discipline
requires every lock to announce its protectorate (or to carry an
explicit ``# tsan: ignore[T003]``).
"""

from __future__ import annotations

import threading


class UndeclaredStore:
    """Owns a lock but declares no guarded attributes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._values: dict[str, float] = {}

    def put(self, key: str, value: float) -> None:
        with self._lock:
            self._values[key] = value
