"""Planted defect: order-dependent ``sum()`` over rates (T005).

Built-in ``sum`` accumulates left to right, so the result depends on
iteration order; rate totals feed uniformity checks and bisimulation
signatures, which must not change when a dict happens to iterate
differently.  Use ``math.fsum`` (order-independent, correctly rounded)
or the quantised signature helpers instead.
"""

from __future__ import annotations


def exit_rate(rates: dict[int, float]) -> float:
    # BUG: order-dependent accumulation of a rate function.
    return sum(rates.values())


def total_rate(rate_list: list[float]) -> float:
    # BUG: same, over a list of rates.
    return sum(rate_list)
