"""Planted defect: guarded attribute written without its lock (T001).

``RacyFleetStore`` is a pocket-sized model of the real
:class:`repro.obs.fleet.FleetStore` with the classic lost-update bug:
``record_push`` performs an unlocked read-modify-write on ``_pushes``,
so two concurrent pushes can both read the same old count and one
increment vanishes.  The file doubles as

* a static-analysis target: ``repro lint defect_unguarded_write.py``
  must flag the unlocked accesses in ``record_push`` as ``T001``; and
* a runtime reproducer: the interleaving harness in
  ``tests/tsan/test_harness.py`` pins a seed where the lost update
  actually happens.
"""

from __future__ import annotations

import threading

from repro.tsan import guarded_by


@guarded_by("_lock", "_pushes", "_payloads")
class RacyFleetStore:
    """A fleet store whose push path forgot to take its lock."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._pushes = 0
        self._payloads: list[str] = []

    def record_push(self, payload: str) -> int:
        # BUG: read-modify-write of guarded state without self._lock.
        count = self._pushes + 1
        self._pushes = count
        self._payloads.append(payload)
        return count

    def snapshot(self) -> tuple[int, tuple[str, ...]]:
        with self._lock:
            return self._pushes, tuple(self._payloads)
