"""Tests for the one-shot reproduction report."""

import pytest

from repro.analysis.report import ReportScale, generate_report, write_report


class TestReport:
    @pytest.fixture(scope="class")
    def quick_report(self) -> str:
        return generate_report(ReportScale.quick())

    def test_contains_all_sections(self, quick_report):
        assert "# Reproduction report" in quick_report
        assert "## Table 1" in quick_report
        assert "## Figure 4" in quick_report
        assert "## Compositional route" in quick_report
        assert "## Sensitivity sweeps" in quick_report

    def test_states_the_overestimation_result(self, quick_report):
        assert "overestimates the worst case at every positive bound: **True**" in quick_report

    def test_contains_paper_comparison(self, quick_report):
        assert "paper Inter.st" in quick_report
        assert "110" in quick_report

    def test_write_report(self, tmp_path):
        path = write_report(tmp_path / "report.md", ReportScale.quick())
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")

    def test_scales_differ(self):
        assert ReportScale.quick().table1_ns != ReportScale().table1_ns
        assert ReportScale.full().table1_ns[-1] > ReportScale().table1_ns[-1]
