"""Tests for the experiment harness and table rendering."""

import numpy as np
import pytest

from repro.analysis.experiments import (
    PAPER_TABLE1,
    compositional_row,
    figure4_curves,
    table1_row,
)
from repro.analysis.stats import ctmdp_alternating_statistics
from repro.analysis.tables import (
    format_bytes,
    render_compositional,
    render_figure4,
    render_table1,
)
from repro.core.ctmdp import CTMDP


class TestStats:
    def test_rate_function_deduplication(self):
        # Two transitions with identical rate functions: one Markov state.
        ctmdp = CTMDP.from_transitions(
            2,
            [
                (0, "a", {1: 1.0}),
                (0, "b", {1: 1.0}),
                (1, "c", {0: 1.0}),
            ],
        )
        stats = ctmdp_alternating_statistics(ctmdp)
        assert stats.interactive_states == 2
        assert stats.interactive_transitions == 3
        assert stats.markov_states == 2
        assert stats.markov_transitions == 2

    def test_as_row_keys(self):
        ctmdp = CTMDP.from_transitions(1, [(0, "a", {0: 1.0})])
        row = ctmdp_alternating_statistics(ctmdp).as_row()
        assert set(row) == {
            "inter_states",
            "markov_states",
            "inter_transitions",
            "markov_transitions",
            "memory_bytes",
        }


class TestTable1:
    def test_row_contents(self):
        row = table1_row(1, time_bounds=(50.0, 100.0), solve_bounds=(50.0,))
        assert row.n == 1
        assert row.stats.markov_states == PAPER_TABLE1[1][1]
        assert 50.0 in row.runtime_seconds
        assert 100.0 not in row.runtime_seconds
        assert set(row.iterations) == {50.0, 100.0}
        assert 0.0 < row.probability[50.0] < 1.0

    def test_predicted_iterations_match_solved(self):
        row = table1_row(1, time_bounds=(75.0,), solve_bounds=(75.0,))
        predicted = table1_row(1, time_bounds=(75.0,), solve_bounds=())
        assert row.iterations[75.0] == predicted.iterations[75.0]

    def test_render_includes_paper_columns(self):
        rows = [table1_row(1, time_bounds=(100.0,), solve_bounds=(100.0,))]
        text = render_table1(rows)
        assert "paper Inter.st" in text
        assert "110" in text  # the paper's N=1 state count

    def test_render_without_comparison(self):
        rows = [table1_row(1, time_bounds=(100.0,), solve_bounds=())]
        text = render_table1(rows, compare_paper=False)
        assert "paper" not in text


class TestFigure4:
    def test_curves_shape_and_overestimation(self):
        curves = figure4_curves(1, time_points=(0.0, 100.0, 200.0), gamma=10.0)
        assert curves.time_points.shape == (3,)
        assert curves.ctmdp_min is not None
        # Monotone and bounded.
        assert list(curves.ctmdp_max) == sorted(curves.ctmdp_max)
        assert (curves.ctmdp_max <= 1.0).all()
        # inf <= sup <= CTMC for t > 0 (the paper's Figure 4 shape).
        assert (curves.ctmdp_min[1:] <= curves.ctmdp_max[1:] + 1e-12).all()
        assert (curves.ctmc[1:] >= curves.ctmdp_max[1:]).all()

    def test_min_curve_optional(self):
        curves = figure4_curves(1, time_points=(50.0,), include_min=False)
        assert curves.ctmdp_min is None

    def test_render(self):
        curves = figure4_curves(1, time_points=(0.0, 50.0), gamma=10.0)
        text = render_figure4(curves)
        assert "CTMDP sup" in text
        assert "N=1" in text

    def test_ctmdp_built_exactly_once(self, monkeypatch):
        # Both sweeps (sup and inf over all time points) must share one
        # registered model; only the CTMC approximation adds a second build.
        from repro.models import ftwc_direct

        calls = {"ctmdp": 0}
        real_build = ftwc_direct.build_ctmdp

        def counting_build(*args, **kwargs):
            calls["ctmdp"] += 1
            return real_build(*args, **kwargs)

        monkeypatch.setattr(ftwc_direct, "build_ctmdp", counting_build)
        curves = figure4_curves(
            1, time_points=(0.0, 50.0, 100.0, 150.0), include_min=True
        )
        assert calls["ctmdp"] == 1
        assert curves.ctmdp_min is not None
        assert curves.ctmdp_max.shape == (4,)


class TestCompositionalRow:
    def test_row(self):
        row = compositional_row(1)
        assert row.n == 1
        assert row.ctmdp_states > 0
        assert 0.0 < row.probability_100h < 1.0

    def test_render(self):
        text = render_compositional([compositional_row(1)])
        assert "CTMDP states" in text


class TestFormatBytes:
    @pytest.mark.parametrize(
        "size, expected",
        [(512, "512 B"), (14_540, "14.2 KB"), (6_300_000, "6.0 MB")],
    )
    def test_formats(self, size, expected):
        assert format_bytes(size) == expected
