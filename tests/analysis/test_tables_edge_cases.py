"""Edge-case tests for the table renderers."""

import pytest

from repro.analysis.tables import _render_grid, format_bytes, render_table1


class TestGridRenderer:
    def test_empty_rows(self):
        text = _render_grid(["a", "bb"], [])
        lines = text.splitlines()
        assert lines[0].split() == ["a", "bb"]
        assert set(lines[1]) <= {"-", " "}

    def test_column_widths_fit_content(self):
        text = _render_grid(["x"], [["longvalue"], ["y"]])
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_right_alignment(self):
        text = _render_grid(["col"], [["1"]])
        assert text.splitlines()[-1].endswith("1")


class TestFormatBytes:
    def test_boundary_kilobyte(self):
        assert format_bytes(1023) == "1023 B"
        assert format_bytes(1024) == "1.0 KB"

    def test_gigabytes_capped(self):
        assert format_bytes(3 * 1024**3) == "3.0 GB"


class TestRenderTable1Empty:
    def test_no_rows(self):
        text = render_table1([])
        assert "Inter.st" in text
