"""Tests for the self-check battery."""

from repro.analysis.validate import CheckOutcome, run_selfcheck


class TestSelfcheck:
    def test_all_checks_pass(self):
        outcomes = run_selfcheck()
        assert len(outcomes) == 6
        assert all(outcome.passed for outcome in outcomes), [
            (o.name, o.detail) for o in outcomes if not o.passed
        ]

    def test_outcomes_have_details(self):
        for outcome in run_selfcheck():
            assert isinstance(outcome, CheckOutcome)
            assert outcome.name
            assert outcome.detail
