"""Tests for the parameter-sweep sensitivity analyses."""

import csv

import numpy as np
import pytest

from repro.analysis.experiments import figure4_curves
from repro.analysis.sweeps import (
    curves_to_csv,
    sweep_cluster_size,
    sweep_failure_rate,
    sweep_repair_speed,
)


class TestSweeps:
    def test_cluster_size_points(self):
        points = sweep_cluster_size((1, 2), t=50.0)
        assert [p.parameter for p in points] == [1.0, 2.0]
        assert all(0.0 < p.probability < 1.0 for p in points)
        assert points[1].states > points[0].states
        # E(N) grows with N.
        assert points[1].uniform_rate > points[0].uniform_rate

    def test_faster_repairs_reduce_risk(self):
        points = sweep_repair_speed(1, (0.5, 1.0, 2.0), t=100.0)
        probabilities = [p.probability for p in points]
        assert probabilities == sorted(probabilities, reverse=True)

    def test_higher_failure_rates_increase_risk(self):
        points = sweep_failure_rate(1, (0.5, 1.0, 2.0), t=100.0)
        probabilities = [p.probability for p in points]
        assert probabilities == sorted(probabilities)

    def test_factor_validation(self):
        with pytest.raises(ValueError):
            sweep_repair_speed(1, (0.0,))
        with pytest.raises(ValueError):
            sweep_failure_rate(1, (-1.0,))


class TestCSVExport:
    def test_round_trip(self, tmp_path):
        curves = figure4_curves(1, time_points=(0.0, 50.0, 100.0), gamma=10.0)
        path = tmp_path / "figure4.csv"
        curves_to_csv(curves, path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["t_hours", "ctmdp_sup", "ctmdp_inf", "ctmc"]
        assert len(rows) == 4
        assert float(rows[2][1]) == pytest.approx(curves.ctmdp_max[1], rel=1e-10)

    def test_without_min_curve(self, tmp_path):
        curves = figure4_curves(1, time_points=(50.0,), include_min=False)
        path = tmp_path / "nomin.csv"
        curves_to_csv(curves, path)
        with open(path, newline="") as handle:
            rows = list(csv.reader(handle))
        assert rows[0] == ["t_hours", "ctmdp_sup", "ctmc"]
