"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.imc.model import IMC, TAU

# ---------------------------------------------------------------------------
# Hypothesis strategies for random models
# ---------------------------------------------------------------------------

ACTIONS = ("a", "b", "c")


@st.composite
def random_imcs(
    draw,
    max_states: int = 6,
    max_interactive: int = 8,
    max_markov: int = 8,
    allow_tau: bool = True,
) -> IMC:
    """A small random IMC (not necessarily uniform)."""
    n = draw(st.integers(min_value=1, max_value=max_states))
    action_pool = ACTIONS + ((TAU,) if allow_tau else ())
    interactive = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.sampled_from(action_pool),
                st.integers(0, n - 1),
            ),
            max_size=max_interactive,
        )
    )
    markov = draw(
        st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.floats(min_value=0.1, max_value=5.0, allow_nan=False),
                st.integers(0, n - 1),
            ),
            max_size=max_markov,
        )
    )
    return IMC(num_states=n, interactive=interactive, markov=markov, initial=0)


@st.composite
def random_uniform_imcs(
    draw,
    max_states: int = 6,
    rate: float = 4.0,
    max_branch: int = 3,
    allow_tau: bool = True,
) -> IMC:
    """A random *uniform* IMC of rate ``rate``.

    Every state is either interactive (only interactive transitions,
    hence unstable or rate-free... visible-only states would break
    uniformity, so interactive states always carry at least one ``tau``)
    or Markov with total exit rate exactly ``rate``.
    """
    n = draw(st.integers(min_value=2, max_value=max_states))
    interactive: list[tuple[int, str, int]] = []
    markov: list[tuple[int, float, int]] = []
    action_pool = ACTIONS + ((TAU,) if allow_tau else ())
    for state in range(n):
        is_markov = draw(st.booleans())
        if is_markov:
            branches = draw(st.integers(1, max_branch))
            targets = [draw(st.integers(0, n - 1)) for _ in range(branches)]
            weights = [draw(st.floats(0.1, 1.0)) for _ in range(branches)]
            total = sum(weights)
            for target, weight in zip(targets, weights):
                markov.append((state, rate * weight / total, target))
        else:
            branches = draw(st.integers(1, max_branch))
            # Guarantee instability so uniformity does not constrain the
            # state (definition 4 applies to stable states only).
            interactive.append((state, TAU, draw(st.integers(0, n - 1))))
            for _ in range(branches - 1):
                interactive.append(
                    (state, draw(st.sampled_from(action_pool)), draw(st.integers(0, n - 1)))
                )
    return IMC(num_states=n, interactive=interactive, markov=markov, initial=0)


@st.composite
def random_closed_uniform_imcs(draw, max_states: int = 6, rate: float = 4.0) -> IMC:
    """A random closed (tau-only) uniform IMC suitable for transformation.

    Interactive states form a DAG layered by index (tau transitions only
    go to strictly higher state indices or to Markov states), which
    excludes Zeno cycles by construction; every interactive path can
    always end in some Markov state because the last state is forced to
    be Markov.
    """
    n = draw(st.integers(min_value=2, max_value=max_states))
    is_markov = [draw(st.booleans()) for _ in range(n - 1)] + [True]
    markov_states = [s for s in range(n) if is_markov[s]]
    interactive: list[tuple[int, str, int]] = []
    markov: list[tuple[int, float, int]] = []
    for state in range(n):
        if is_markov[state]:
            branches = draw(st.integers(1, 3))
            weights = [draw(st.floats(0.1, 1.0)) for _ in range(branches)]
            total = sum(weights)
            for weight in weights:
                target = draw(st.integers(0, n - 1))
                markov.append((state, rate * weight / total, target))
        else:
            # Tau transitions to later states or Markov states: acyclic.
            branches = draw(st.integers(1, 3))
            for _ in range(branches):
                later = [t for t in range(state + 1, n)] + markov_states
                interactive.append((state, TAU, draw(st.sampled_from(sorted(set(later))))))
    return IMC(num_states=n, interactive=interactive, markov=markov, initial=0)


# ---------------------------------------------------------------------------
# Plain fixtures
# ---------------------------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator for simulation-based tests."""
    return np.random.default_rng(20070625)  # DSN 2007, Edinburgh
