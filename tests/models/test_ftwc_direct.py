"""Tests for the direct FTWC generator -- including the quantitative
match against the paper's Table 1 model statistics."""

import numpy as np
import pytest

from repro.analysis.experiments import PAPER_TABLE1
from repro.analysis.stats import ctmdp_alternating_statistics
from repro.core.reachability import timed_reachability
from repro.ctmc.reachability import timed_reachability as ctmc_reachability
from repro.errors import ModelError
from repro.models.ftwc_direct import (
    Config,
    FTWCParameters,
    build_ctmc,
    build_ctmdp,
    premium,
    uniform_rate,
)


class TestParameters:
    def test_defaults_from_the_literature(self):
        params = FTWCParameters(n=4)
        assert params.ws_fail == pytest.approx(1 / 500)
        assert params.sw_fail == pytest.approx(1 / 4000)
        assert params.bb_fail == pytest.approx(1 / 5000)
        assert params.mu_max == pytest.approx(2.0)

    def test_uniform_rate_formula(self):
        # E(N) = 2 + 2N/500 + 2/4000 + 1/5000.
        for n in (1, 16, 128):
            expected = 2.0 + 2 * n * 0.002 + 2 * 0.00025 + 0.0002
            assert uniform_rate(FTWCParameters(n=n)) == pytest.approx(expected)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ModelError):
            FTWCParameters(n=0)
        with pytest.raises(ModelError):
            FTWCParameters(n=1, ws_fail=-1.0)

    def test_kind_lookup(self):
        params = FTWCParameters(n=1)
        assert params.fail_rate("bb") == pytest.approx(0.0002)
        assert params.repair_rate("swL") == pytest.approx(0.25)


class TestPremium:
    def test_all_up_is_premium(self):
        assert premium(Config(0, 0, False, False, False), n=4)

    def test_one_cluster_suffices(self):
        # Right cluster fully up with its switch: premium, even with the
        # left side and backbone dead.
        assert premium(Config(4, 0, True, False, True), n=4)

    def test_split_needs_backbone_and_both_switches(self):
        config = Config(2, 2, False, False, False)
        assert premium(config, n=4)
        assert not premium(Config(2, 2, False, False, True), n=4)
        assert not premium(Config(2, 2, True, False, False), n=4)

    def test_too_few_workstations(self):
        assert not premium(Config(3, 2, False, False, False), n=4)

    def test_switch_down_blocks_own_cluster(self):
        assert not premium(Config(0, 4, True, False, False), n=4)
        assert premium(Config(0, 4, False, True, False), n=4)


class TestModelStructure:
    @pytest.mark.parametrize("n", [1, 2, 4])
    def test_uniform_by_construction(self, n):
        model = build_ctmdp(n)
        assert model.ctmdp.is_uniform(tol=1e-9)
        assert model.ctmdp.uniform_rate() == pytest.approx(
            uniform_rate(model.params)
        )

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_matches_paper_table1_markov_states(self, n):
        """The deduplicated rate functions are the Markov states of the
        strictly alternating IMC; the paper's counts are reproduced
        exactly."""
        stats = ctmdp_alternating_statistics(build_ctmdp(n).ctmdp)
        assert stats.markov_states == PAPER_TABLE1[n][1]

    @pytest.mark.parametrize("n", [1, 2, 4, 8])
    def test_close_to_paper_table1_state_counts(self, n):
        stats = ctmdp_alternating_statistics(build_ctmdp(n).ctmdp)
        paper_states, _, paper_itr, paper_mtr, _, _ = PAPER_TABLE1[n]
        assert abs(stats.interactive_states - paper_states) <= 1
        assert abs(stats.interactive_transitions - paper_itr) <= 1
        assert abs(stats.markov_transitions - paper_mtr) <= 2

    def test_initial_state_is_all_up(self):
        model = build_ctmdp(2)
        config = model.configs[model.ctmdp.initial]
        assert config == Config(0, 0, False, False, False)

    def test_decision_states_offer_grabs_only(self):
        model = build_ctmdp(2)
        for state, config in enumerate(model.configs):
            labels = {
                t.action for t in model.ctmdp.transitions_of(state)
            }
            if config.is_decision_point():
                assert labels == {f"g_{k}" for k in config.failed_kinds()}
            else:
                assert labels == {"tau"}

    def test_goal_mask_matches_predicate(self):
        model = build_ctmdp(2)
        for state, config in enumerate(model.configs):
            assert model.goal_mask[state] == (not premium(config, 2))

    def test_param_mismatch_rejected(self):
        with pytest.raises(ModelError):
            build_ctmdp(2, FTWCParameters(n=3))


class TestAnalysis:
    def test_worst_case_grows_with_time(self):
        model = build_ctmdp(2)
        values = [
            timed_reachability(model.ctmdp, model.goal_mask, t).value(0)
            for t in (10.0, 100.0, 1000.0)
        ]
        assert values == sorted(values)
        assert 0.0 < values[0] < values[-1] < 1.0

    def test_min_below_max(self):
        model = build_ctmdp(4)
        t = 500.0
        sup = timed_reachability(model.ctmdp, model.goal_mask, t).value(0)
        inf = timed_reachability(model.ctmdp, model.goal_mask, t, objective="min").value(0)
        assert inf <= sup

    @pytest.mark.parametrize("n", [1, 2])
    def test_ctmc_overestimates_worst_case(self, n):
        """The paper's headline Figure 4 finding: the CTMC of [13]
        consistently overestimates even the worst-case probability."""
        model = build_ctmdp(n)
        chain, _configs, goal = build_ctmc(n, gamma=10.0)
        for t in (50.0, 200.0):
            sup = timed_reachability(model.ctmdp, model.goal_mask, t).value(0)
            approx = ctmc_reachability(chain, goal, t, epsilon=1e-10)[0]
            assert approx > sup

    def test_larger_gamma_shrinks_the_artefact(self):
        n, t = 1, 100.0
        model = build_ctmdp(n)
        sup = timed_reachability(model.ctmdp, model.goal_mask, t).value(0)
        gaps = []
        for gamma in (10.0, 100.0):
            chain, _c, goal = build_ctmc(n, gamma=gamma)
            approx = ctmc_reachability(chain, goal, t, epsilon=1e-10)[0]
            gaps.append(approx - sup)
        assert gaps[1] < gaps[0]
        assert all(gap > 0.0 for gap in gaps)

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ModelError):
            build_ctmc(1, gamma=0.0)


class TestQualityThreshold:
    def test_default_is_premium(self):
        from repro.models.ftwc_direct import Config

        config = Config(1, 0, False, False, False)
        assert premium(config, 4, threshold=None) == premium(config, 4)

    def test_lower_threshold_is_easier(self):
        from repro.models.ftwc_direct import Config

        config = Config(3, 2, False, False, False)  # 1 + 2 operational
        assert not premium(config, 4)
        assert premium(config, 4, threshold=3)
        assert not premium(config, 4, threshold=4)

    def test_threshold_validated(self):
        from repro.models.ftwc_direct import Config

        with pytest.raises(ModelError):
            premium(Config(0, 0, False, False, False), 2, threshold=0)
        with pytest.raises(ModelError):
            premium(Config(0, 0, False, False, False), 2, threshold=5)

    def test_risk_decreases_with_threshold(self):
        values = []
        for threshold in (4, 3, 2, 1):
            model = build_ctmdp(2, quality_threshold=threshold)
            result = timed_reachability(model.ctmdp, model.goal_mask, 100.0)
            values.append(result.value(model.ctmdp.initial))
        assert values == sorted(values, reverse=True)

    def test_ctmc_variant_accepts_threshold(self):
        chain, configs, goal = build_ctmc(2, quality_threshold=1)
        _chain2, _c2, stricter = build_ctmc(2, quality_threshold=4)
        assert goal.sum() < stricter.sum()


class TestLargeSizes:
    @pytest.mark.slow
    @pytest.mark.parametrize("n", [16, 32, 64])
    def test_matches_paper_at_scale(self, n):
        from repro.analysis.stats import ctmdp_alternating_statistics

        stats = ctmdp_alternating_statistics(build_ctmdp(n).ctmdp)
        paper_states, paper_markov, *_ = PAPER_TABLE1[n]
        assert stats.markov_states == paper_markov
        assert abs(stats.interactive_states - paper_states) <= 1
