"""Tests for the stochastic job-scheduling case study."""

import math
from itertools import permutations

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.ctmc.reachability import timed_reachability as ctmc_reachability
from repro.errors import ModelError
from repro.models.job_scheduling import build_job_scheduling


class TestStructure:
    def test_uniform_by_construction(self):
        model = build_job_scheduling([1.0, 2.0, 3.0], processors=2)
        assert model.ctmdp.is_uniform()
        assert model.ctmdp.uniform_rate() == pytest.approx(6.0)

    def test_state_count(self):
        model = build_job_scheduling([1.0, 2.0, 3.0], processors=2)
        assert model.ctmdp.num_states == 8
        assert model.state_of([]) == 0
        assert model.state_of([0, 2]) == 5

    def test_choices_are_running_subsets(self):
        model = build_job_scheduling([1.0, 1.0, 1.0], processors=2)
        full = model.ctmdp.num_states - 1
        assert model.ctmdp.num_choices(full) == 3  # C(3, 2)
        one_left = model.state_of([1])
        assert model.ctmdp.num_choices(one_left) == 1

    def test_validation(self):
        with pytest.raises(ModelError):
            build_job_scheduling([], processors=1)
        with pytest.raises(ModelError):
            build_job_scheduling([1.0, -2.0], processors=1)
        with pytest.raises(ModelError):
            build_job_scheduling([1.0], processors=0)
        with pytest.raises(ModelError):
            build_job_scheduling([1.0], processors=1).state_of([4])


class TestAnalysis:
    def test_single_processor_single_job(self):
        model = build_job_scheduling([2.0], processors=1)
        for t in (0.3, 1.0):
            result = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-10)
            assert result.value(model.ctmdp.initial) == pytest.approx(
                1.0 - math.exp(-2.0 * t), abs=1e-9
            )

    def test_enough_processors_is_parallel_race(self):
        # With k >= m all jobs run: P(all done by t) = prod(1 - e^{-l t}).
        rates = [1.0, 2.0, 3.0]
        model = build_job_scheduling(rates, processors=3)
        t = 0.8
        result = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-10)
        expected = np.prod([1.0 - math.exp(-r * t) for r in rates])
        assert result.value(model.ctmdp.initial) == pytest.approx(expected, abs=1e-8)

    def test_symmetric_jobs_make_all_policies_equal(self):
        model = build_job_scheduling([1.5] * 3, processors=2)
        t = 1.0
        sup = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-9)
        inf = timed_reachability(
            model.ctmdp, model.goal_mask, t, epsilon=1e-9, objective="min"
        )
        assert sup.value(model.ctmdp.initial) == pytest.approx(
            inf.value(model.ctmdp.initial), abs=1e-9
        )

    def test_asymmetric_jobs_make_scheduling_matter(self):
        model = build_job_scheduling([0.5, 1.0, 4.0], processors=2)
        t = 1.5
        sup = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-9)
        inf = timed_reachability(
            model.ctmdp, model.goal_mask, t, epsilon=1e-9, objective="min"
        )
        assert sup.value(model.ctmdp.initial) > inf.value(model.ctmdp.initial) + 1e-6

    def _static_policy_value(self, model, priority, t):
        """Induced CTMC of the static priority policy: in every state run
        the ``k`` remaining jobs that come first in ``priority``."""
        choices = np.zeros(model.ctmdp.num_states, dtype=np.int64)
        for state in range(1, model.ctmdp.num_states):
            remaining = [j for j in range(len(model.rates)) if state & (1 << j)]
            width = min(model.processors, len(remaining))
            preferred = tuple(
                sorted(sorted(remaining, key=priority.index)[:width])
            )
            transitions = model.ctmdp.transitions_of(state)
            for idx, transition in enumerate(transitions):
                if transition.action == "run{" + ",".join(map(str, preferred)) + "}":
                    choices[state] = idx
                    break
            else:  # pragma: no cover - defensive
                raise AssertionError("static choice not found")
        chain = model.ctmdp.induced_ctmc(choices)
        return ctmc_reachability(chain, model.goal_mask, t, epsilon=1e-11)[
            model.ctmdp.initial
        ]

    def test_optimum_dominates_every_static_priority(self):
        rates = [0.5, 1.0, 4.0]
        model = build_job_scheduling(rates, processors=2)
        t = 1.2
        sup = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-9).value(
            model.ctmdp.initial
        )
        inf = timed_reachability(
            model.ctmdp, model.goal_mask, t, epsilon=1e-9, objective="min"
        ).value(model.ctmdp.initial)
        static_values = [
            self._static_policy_value(model, list(priority), t)
            for priority in permutations(range(len(rates)))
        ]
        assert max(static_values) <= sup + 1e-8
        assert min(static_values) >= inf - 1e-8

    def test_more_processors_never_hurt(self):
        rates = [1.0, 2.0, 3.0]
        t = 0.7
        values = []
        for processors in (1, 2, 3):
            model = build_job_scheduling(rates, processors)
            values.append(
                timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-9).value(
                    model.ctmdp.initial
                )
            )
        assert values[0] <= values[1] + 1e-9
        assert values[1] <= values[2] + 1e-9
