"""Tests for the compositional FTWC construction (Section 5)."""

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.models.ftwc import (
    build_compositional,
    build_system_imc,
    component_block,
    component_lts,
    premium_from_obs,
    repair_station,
)
from repro.models.ftwc_direct import FTWCParameters, build_ctmdp, uniform_rate


class TestComponents:
    def test_component_lts_is_uniform_lts(self):
        block = component_lts("wsL")
        assert block.imc.is_lts()
        assert block.imc.is_uniform()
        assert block.imc.uniform_rate() == 0.0

    def test_component_observation_marks_up_state(self):
        block = component_lts("swR")
        up = block.imc.state_names.index("swR:up")
        assert block.observations[up] == (0, 0, 0, 1, 0)
        for state in range(block.imc.num_states):
            if state != up:
                assert sum(block.observations[state]) == 0

    def test_repair_station_uniform_at_mu_max(self):
        station = repair_station(FTWCParameters(n=2))
        assert station.imc.is_uniform()
        assert station.imc.uniform_rate() == pytest.approx(2.0)

    def test_repair_station_grabs_every_kind(self):
        station = repair_station(FTWCParameters(n=1))
        grabs = {a for _s, a, _t in station.imc.interactive if a.startswith("g_")}
        assert grabs == {"g_wsL", "g_wsR", "g_swL", "g_swR", "g_bb"}

    def test_component_block_uniform_at_fail_rate(self):
        block = component_block("wsL", 0.002)
        assert block.imc.is_uniform()
        assert block.imc.uniform_rate() == pytest.approx(0.002)


class TestPremiumFromObs:
    def test_matches_direct_predicate(self):
        from repro.models.ftwc_direct import Config, premium

        n = 3
        for failed_left in range(n + 1):
            for failed_right in range(n + 1):
                for flags in range(8):
                    config = Config(
                        failed_left,
                        failed_right,
                        bool(flags & 1),
                        bool(flags & 2),
                        bool(flags & 4),
                    )
                    obs = (
                        n - failed_left,
                        n - failed_right,
                        0 if config.sw_left_down else 1,
                        0 if config.sw_right_down else 1,
                        0 if config.bb_down else 1,
                    )
                    assert premium_from_obs(obs, n) == premium(config, n)


class TestFullSystem:
    def test_system_uniform_rate_matches_formula(self):
        system = build_system_imc(1)
        expected = uniform_rate(FTWCParameters(n=1))
        assert system.imc.is_uniform(closed=True)
        assert system.imc.uniform_rate(closed=True) == pytest.approx(expected)

    def test_agrees_with_direct_generator_n1(self):
        comp = build_compositional(1)
        direct = build_ctmdp(1)
        for t in (10.0, 100.0, 1000.0):
            value_comp = timed_reachability(
                comp.ctmdp, comp.goal_mask, t, epsilon=1e-8
            ).value(comp.ctmdp.initial)
            value_direct = timed_reachability(
                direct.ctmdp, direct.goal_mask, t, epsilon=1e-8
            ).value(direct.ctmdp.initial)
            assert value_comp == pytest.approx(value_direct, rel=1e-6, abs=1e-12)

    def test_min_agrees_with_direct_generator_n1(self):
        comp = build_compositional(1)
        direct = build_ctmdp(1)
        t = 200.0
        value_comp = timed_reachability(
            comp.ctmdp, comp.goal_mask, t, epsilon=1e-8, objective="min"
        ).value(comp.ctmdp.initial)
        value_direct = timed_reachability(
            direct.ctmdp, direct.goal_mask, t, epsilon=1e-8, objective="min"
        ).value(direct.ctmdp.initial)
        assert value_comp == pytest.approx(value_direct, rel=1e-6, abs=1e-12)

    @pytest.mark.slow
    def test_agrees_with_direct_generator_n2(self):
        comp = build_compositional(2)
        direct = build_ctmdp(2)
        t = 100.0
        value_comp = timed_reachability(
            comp.ctmdp, comp.goal_mask, t, epsilon=1e-8
        ).value(comp.ctmdp.initial)
        value_direct = timed_reachability(
            direct.ctmdp, direct.goal_mask, t, epsilon=1e-8
        ).value(direct.ctmdp.initial)
        assert value_comp == pytest.approx(value_direct, rel=1e-6, abs=1e-12)

    def test_without_intermediate_minimisation_same_values(self):
        fat = build_compositional(1, minimize_intermediate=False)
        slim = build_compositional(1, minimize_intermediate=True)
        t = 100.0
        value_fat = timed_reachability(fat.ctmdp, fat.goal_mask, t, epsilon=1e-8).value(
            fat.ctmdp.initial
        )
        value_slim = timed_reachability(
            slim.ctmdp, slim.goal_mask, t, epsilon=1e-8
        ).value(slim.ctmdp.initial)
        assert value_fat == pytest.approx(value_slim, rel=1e-6, abs=1e-12)

    def test_transform_statistics_populated(self):
        comp = build_compositional(1)
        stats = comp.transform.statistics
        assert stats.interactive_states == comp.ctmdp.num_states
        assert stats.markov_states > 0
        assert stats.transform_seconds > 0.0
