"""Tests for the example-model zoo."""

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.ctmc.uniformization import steady_state_distribution
from repro.errors import ModelError
from repro.imc.transform import imc_to_ctmdp
from repro.models.zoo import (
    cyclic_ctmc,
    erlang_vs_exponential_race,
    producer_consumer_imc,
    queue_with_breakdowns,
    two_phase_race_ctmdp,
)


class TestTwoPhaseRace:
    def test_structure(self):
        ctmdp, goal = two_phase_race_ctmdp()
        assert ctmdp.is_uniform()
        assert goal.sum() == 1
        assert ctmdp.num_choices(0) == 2

    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            two_phase_race_ctmdp(fast=1.0, slow=2.0)


class TestErlangRace:
    def test_structure(self):
        ctmdp, goal = erlang_vs_exponential_race(phases=4)
        assert ctmdp.is_uniform()
        assert ctmdp.num_states == 5
        assert goal[-1]

    def test_needs_two_phases(self):
        with pytest.raises(ModelError):
            erlang_vs_exponential_race(phases=1)


class TestQueue:
    def test_structure(self):
        chain, goal = queue_with_breakdowns(capacity=3)
        assert chain.num_states == 8
        assert goal.sum() == 2

    def test_steady_state_sums_to_one(self):
        chain, _ = queue_with_breakdowns(capacity=2)
        pi = steady_state_distribution(chain)
        assert pi.sum() == pytest.approx(1.0)

    def test_capacity_validated(self):
        with pytest.raises(ModelError):
            queue_with_breakdowns(capacity=0)


class TestCycle:
    def test_uniform(self):
        chain = cyclic_ctmc(states=5, rate=2.0)
        assert chain.is_uniform()
        assert chain.uniform_rate() == pytest.approx(2.0)

    def test_too_small_rejected(self):
        with pytest.raises(ModelError):
            cyclic_ctmc(states=1)


class TestProducerConsumer:
    def test_uniform_by_construction(self):
        system = producer_consumer_imc(buffer_size=2)
        assert system.is_uniform(closed=True)
        assert system.uniform_rate(closed=True) == pytest.approx(5.0)

    def test_transformable_and_analysable(self):
        system = producer_consumer_imc(buffer_size=1)
        result = imc_to_ctmdp(system, require_uniform=True)
        # Goal: buffer full (component name contains "n=1" as current count).
        mask = result.goal_mask_from_predicate(
            lambda s: "|n=1|" in f"|{system.name_of(s)}|".replace("||", "|"),
            via="markov",
        )
        value = timed_reachability(result.ctmdp, mask, 2.0, epsilon=1e-9)
        assert 0.0 < value.value(result.ctmdp.initial) <= 1.0

    def test_buffer_size_validated(self):
        with pytest.raises(ModelError):
            producer_consumer_imc(buffer_size=0)


class TestTandemQueue:
    def test_structure(self):
        from repro.models.zoo import tandem_queue

        chain, goal = tandem_queue(capacity=2)
        assert chain.num_states == 9
        assert goal.sum() == 1

    def test_congestion_probability_grows_with_load(self):
        from repro.ctmc.reachability import timed_reachability as ctmc_reach
        from repro.models.zoo import tandem_queue

        values = []
        for arrival in (0.5, 1.5, 4.0):
            chain, goal = tandem_queue(capacity=2, arrival=arrival)
            values.append(ctmc_reach(chain, goal, 10.0)[chain.initial])
        assert values == sorted(values)

    def test_steady_state_mass_balances(self):
        from repro.ctmc.uniformization import steady_state_distribution
        from repro.models.zoo import tandem_queue

        chain, _ = tandem_queue(capacity=2)
        pi = steady_state_distribution(chain)
        assert pi.sum() == pytest.approx(1.0)
        assert (pi > 0.0).all()  # irreducible

    def test_validation(self):
        from repro.models.zoo import tandem_queue

        with pytest.raises(ModelError):
            tandem_queue(capacity=0)
        with pytest.raises(ModelError):
            tandem_queue(arrival=-1.0)
