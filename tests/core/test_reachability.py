"""Tests for Algorithm 1 (timed reachability in uniform CTMDPs)."""

import math

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.core.reachability import timed_reachability, unbounded_reachability
from repro.core.scheduler import StepScheduler, UniformRandomScheduler
from repro.ctmc.model import CTMC
from repro.ctmc.reachability import timed_reachability as ctmc_reachability
from repro.errors import ModelError, NonUniformError
from repro.models.zoo import erlang_vs_exponential_race, two_phase_race_ctmdp
from repro.sim.simulate import simulate_ctmdp_reachability


def single_action_ctmdp_from_ctmc(chain: CTMC) -> CTMDP:
    """Wrap a uniform CTMC as a one-action-per-state CTMDP."""
    transitions = []
    for state in range(chain.num_states):
        rates = {dst: rate for dst, rate in chain.successors(state)}
        if rates:
            transitions.append((state, "only", rates))
    return CTMDP.from_transitions(chain.num_states, transitions, initial=chain.initial)


class TestAgainstCTMC:
    def test_single_action_matches_ctmc_solver(self):
        chain = CTMC.from_transitions(
            4,
            [
                (0, 1, 2.0),
                (0, 0, 1.0),
                (1, 2, 1.0),
                (1, 0, 2.0),
                (2, 3, 3.0),
                (3, 3, 3.0),
            ],
        )
        ctmdp = single_action_ctmdp_from_ctmc(chain)
        goal = np.array([False, False, True, False])
        for t in (0.2, 1.0, 3.0):
            expected = ctmc_reachability(chain, goal, t, epsilon=1e-12)
            for objective in ("max", "min"):
                result = timed_reachability(ctmdp, goal, t, epsilon=1e-10, objective=objective)
                np.testing.assert_allclose(result.values, expected, atol=1e-8)

    def test_exponential_single_step(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {1: 3.0}), (1, "a", {1: 3.0})]
        )
        goal = np.array([False, True])
        for t in (0.1, 1.0):
            result = timed_reachability(ctmdp, goal, t, epsilon=1e-10)
            assert result.value(0) == pytest.approx(1.0 - math.exp(-3.0 * t), abs=1e-9)


class TestOptimisation:
    def test_max_at_least_min(self):
        ctmdp, goal = two_phase_race_ctmdp()
        for t in (0.01, 0.1, 0.5, 2.0):
            sup = timed_reachability(ctmdp, goal, t).value(0)
            inf = timed_reachability(ctmdp, goal, t, objective="min").value(0)
            assert sup >= inf - 1e-12

    def test_max_dominates_any_stationary_scheduler(self):
        ctmdp, goal = two_phase_race_ctmdp()
        t = 0.4
        sup = timed_reachability(ctmdp, goal, t, epsilon=1e-10).value(0)
        inf = timed_reachability(ctmdp, goal, t, epsilon=1e-10, objective="min").value(0)
        for choice0 in (0, 1):
            chain = ctmdp.induced_ctmc([choice0, 0, 0])
            value = ctmc_reachability(chain, [2], t, epsilon=1e-12)[0]
            assert inf - 1e-9 <= value <= sup + 1e-9

    def test_crossover_makes_optimum_time_dependent(self):
        """For short horizons the direct slow path wins, for long ones
        the fast detour: the sup strictly exceeds both stationary
        schedulers somewhere in between."""
        ctmdp, goal = two_phase_race_ctmdp()
        direct = ctmdp.induced_ctmc([0, 0, 0])
        detour = ctmdp.induced_ctmc([1, 0, 0])
        # Identify which stationary choice is which by the rate into goal.
        values_small = (
            ctmc_reachability(direct, [2], 0.005, epsilon=1e-12)[0],
            ctmc_reachability(detour, [2], 0.005, epsilon=1e-12)[0],
        )
        values_large = (
            ctmc_reachability(direct, [2], 3.0, epsilon=1e-12)[0],
            ctmc_reachability(detour, [2], 3.0, epsilon=1e-12)[0],
        )
        # The winner flips between the horizons.
        assert (values_small[0] > values_small[1]) != (values_large[0] > values_large[1])
        for t in (0.005, 3.0):
            sup = timed_reachability(ctmdp, goal, t, epsilon=1e-10).value(0)
            stationary_best = max(
                ctmc_reachability(direct, [2], t, epsilon=1e-12)[0],
                ctmc_reachability(detour, [2], t, epsilon=1e-12)[0],
            )
            assert sup >= stationary_best - 1e-9

    def test_erlang_race_crossover(self):
        ctmdp, goal = erlang_vs_exponential_race()
        short = timed_reachability(ctmdp, goal, 0.05, epsilon=1e-9)
        long = timed_reachability(ctmdp, goal, 3.0, epsilon=1e-9)
        assert 0.0 < short.value(0) < long.value(0) <= 1.0


class TestScheduler:
    def test_recorded_scheduler_achieves_optimum(self, rng):
        ctmdp, goal = two_phase_race_ctmdp()
        t = 0.6
        result = timed_reachability(ctmdp, goal, t, epsilon=1e-8, record_scheduler=True)
        assert result.decisions is not None
        assert result.decisions.shape == (result.iterations, ctmdp.num_states)
        scheduler = StepScheduler(decisions=result.decisions)
        estimate = simulate_ctmdp_reachability(
            ctmdp, scheduler, goal={2}, t=t, runs=6000, rng=rng
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= result.value(0) <= high

    def test_random_scheduler_below_max(self, rng):
        ctmdp, goal = two_phase_race_ctmdp()
        t = 0.6
        sup = timed_reachability(ctmdp, goal, t, epsilon=1e-8).value(0)
        estimate = simulate_ctmdp_reachability(
            ctmdp, UniformRandomScheduler(), goal={2}, t=t, runs=6000, rng=rng
        )
        low, _high = estimate.confidence_interval(z=4.0)
        assert low <= sup + 1e-9


class TestEdgeCases:
    def test_time_zero(self):
        ctmdp, goal = two_phase_race_ctmdp()
        result = timed_reachability(ctmdp, goal, 0.0)
        np.testing.assert_allclose(result.values, goal.astype(float))
        assert result.iterations == 0

    def test_empty_goal(self):
        ctmdp, _ = two_phase_race_ctmdp()
        result = timed_reachability(ctmdp, [], 1.0)
        np.testing.assert_allclose(result.values, 0.0)

    def test_goal_state_is_one(self):
        ctmdp, goal = two_phase_race_ctmdp()
        result = timed_reachability(ctmdp, goal, 1.0)
        assert result.values[2] == 1.0

    def test_absorbing_non_goal_state_is_zero(self):
        ctmdp = CTMDP.from_transitions(
            3, [(0, "a", {1: 1.0, 2: 1.0}), (1, "a", {1: 2.0})]
        )
        goal = np.array([False, True, False])
        result = timed_reachability(ctmdp, goal, 5.0)
        assert result.values[2] == 0.0
        assert 0.0 < result.values[0] < 1.0

    def test_values_within_unit_interval(self):
        ctmdp, goal = two_phase_race_ctmdp()
        for t in (0.1, 1.0, 10.0, 100.0):
            values = timed_reachability(ctmdp, goal, t).values
            assert (values >= 0.0).all() and (values <= 1.0).all()

    def test_monotone_in_time(self):
        ctmdp, goal = two_phase_race_ctmdp()
        values = [timed_reachability(ctmdp, goal, t).value(0) for t in (0.1, 0.5, 1.0, 5.0)]
        assert values == sorted(values)

    def test_non_uniform_rejected(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {1: 1.0}), (1, "b", {0: 7.0})]
        )
        with pytest.raises(NonUniformError):
            timed_reachability(ctmdp, [1], 1.0)

    def test_negative_time_rejected(self):
        ctmdp, goal = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            timed_reachability(ctmdp, goal, -1.0)

    def test_bad_objective_rejected(self):
        ctmdp, goal = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            timed_reachability(ctmdp, goal, 1.0, objective="best")

    def test_wrong_mask_shape_rejected(self):
        ctmdp, _ = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            timed_reachability(ctmdp, np.array([True]), 1.0)


class TestUnbounded:
    def test_converges_to_timed_limit(self):
        ctmdp, goal = two_phase_race_ctmdp()
        eventual = unbounded_reachability(ctmdp, goal)
        timed = timed_reachability(ctmdp, goal, 50.0, epsilon=1e-10)
        np.testing.assert_allclose(timed.values, eventual, atol=1e-6)

    def test_unreachable_is_zero(self):
        ctmdp = CTMDP.from_transitions(
            3, [(0, "a", {0: 1.0}), (1, "a", {2: 1.0}), (2, "a", {2: 1.0})]
        )
        values = unbounded_reachability(ctmdp, [2])
        assert values[0] == 0.0
        assert values[1] == 1.0

    def test_min_objective(self):
        ctmdp, goal = two_phase_race_ctmdp()
        values = unbounded_reachability(ctmdp, goal, objective="min")
        # Both choices eventually reach the goal with probability one.
        np.testing.assert_allclose(values, 1.0, atol=1e-9)

    def test_empty_goal(self):
        ctmdp, _ = two_phase_race_ctmdp()
        np.testing.assert_allclose(unbounded_reachability(ctmdp, []), 0.0)

    def test_bad_objective_rejected(self):
        ctmdp, goal = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            unbounded_reachability(ctmdp, goal, objective="avg")
