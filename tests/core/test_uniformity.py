"""Tests for CTMDP uniformization."""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.core.reachability import timed_reachability
from repro.core.uniformity import uniformize_ctmdp
from repro.errors import ModelError
from repro.models.zoo import two_phase_race_ctmdp


class TestUniformize:
    def test_pads_to_max_exit_rate(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {1: 1.0}), (1, "b", {0: 4.0})]
        )
        uniform = uniformize_ctmdp(ctmdp)
        assert uniform.is_uniform()
        assert uniform.uniform_rate() == pytest.approx(4.0)
        # The padded transition self-loops with the deficit.
        assert uniform.rate_matrix[0, 0] == pytest.approx(3.0)

    def test_explicit_rate(self):
        ctmdp, _ = two_phase_race_ctmdp()
        padded = uniformize_ctmdp(ctmdp, rate=33.0)
        assert padded.uniform_rate() == pytest.approx(33.0)

    def test_rate_below_max_rejected(self):
        ctmdp, _ = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            uniformize_ctmdp(ctmdp, rate=1.0)

    def test_nonpositive_rate_rejected(self):
        ctmdp, _ = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            uniformize_ctmdp(ctmdp, rate=0.0)

    def test_already_uniform_unchanged_at_own_rate(self):
        ctmdp, _ = two_phase_race_ctmdp()
        same = uniformize_ctmdp(ctmdp)
        np.testing.assert_allclose(
            same.rate_matrix.toarray(), ctmdp.rate_matrix.toarray()
        )

    def test_padding_preserves_timed_reachability(self):
        """For already-uniform models, padding only refines the Poisson
        clock: the reachability values are unchanged while the iteration
        count grows proportionally to the rate."""
        ctmdp, goal = two_phase_race_ctmdp()
        padded = uniformize_ctmdp(ctmdp, rate=3.0 * ctmdp.uniform_rate())
        for t in (0.2, 1.0):
            base = timed_reachability(ctmdp, goal, t, epsilon=1e-10)
            more = timed_reachability(padded, goal, t, epsilon=1e-10)
            np.testing.assert_allclose(more.values, base.values, atol=1e-8)
            assert more.iterations > base.iterations
