"""Regression tests for scheduler extraction under the ``min`` objective.

The historical bug: the argbest step of Algorithm 1's scheduler
recording used ``transition_values >= best - tol`` for *both*
objectives.  Under ``objective="min"`` every transition value is
``>=`` the segment minimum, so the "minimising" scheduler silently
degenerated to "always the first transition".  The model below is
crafted so that the first transition of the branching state is the
*maximiser* -- on the old code the recorded min scheduler achieves the
max value and every test here fails.
"""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.core.reachability import evaluate_step_scheduler, timed_reachability
from repro.core.scheduler import greedy_scheduler_from_decisions
from repro.errors import ModelError


def branching_model() -> CTMDP:
    """Uniform (E = 3) model where state 0's first transition is the
    max choice and its second the min choice: ``fast`` jumps straight
    into the goal, ``slow`` detours through state 2 which mostly leads
    back to 0."""
    return CTMDP.from_transitions(
        3,
        [
            (0, "fast", {1: 3.0}),
            (0, "slow", {2: 3.0}),
            (1, "stay", {1: 3.0}),
            (2, "back", {0: 2.0, 1: 1.0}),
        ],
    )


GOAL = [1]


class TestMinSchedulerExtraction:
    @pytest.mark.parametrize("t", [0.5, 1.0, 2.0])
    def test_recorded_min_scheduler_achieves_min_value(self, t):
        """The headline regression: replaying the recorded min
        scheduler must reproduce the min values.  On the old ``>=``
        extraction the recording degenerates to the first (max)
        transition and the replayed value is the max value instead."""
        ctmdp = branching_model()
        result = timed_reachability(
            ctmdp, GOAL, t, epsilon=1e-10, objective="min", record_scheduler=True
        )
        assert result.decisions is not None
        replayed = evaluate_step_scheduler(
            ctmdp, GOAL, t, result.decisions, epsilon=1e-10
        )
        np.testing.assert_allclose(replayed, result.values, atol=1e-12)

    @pytest.mark.parametrize("t", [0.5, 1.0, 2.0])
    def test_min_scheduler_picks_the_slow_transition(self, t):
        """On this model the minimiser at state 0 is transition 1 at
        every recorded step with non-negligible Poisson weight."""
        ctmdp = branching_model()
        result = timed_reachability(
            ctmdp, GOAL, t, epsilon=1e-10, objective="min", record_scheduler=True
        )
        recorded = result.decisions[:, 0]
        assert (recorded[recorded >= 0] == 1).all()

    @pytest.mark.parametrize("t", [0.5, 1.0, 2.0])
    def test_first_transition_scheduler_is_strictly_worse(self, t):
        """What the old code recorded -- always the first transition --
        must be strictly worse (larger) than the true minimum, i.e. the
        model really discriminates the two extractions."""
        ctmdp = branching_model()
        result = timed_reachability(ctmdp, GOAL, t, epsilon=1e-10, objective="min")
        first_only = np.zeros((1, ctmdp.num_states), dtype=np.int32)
        degenerate = evaluate_step_scheduler(ctmdp, GOAL, t, first_only, epsilon=1e-10)
        assert degenerate[0] > result.value(0) + 0.1

    @pytest.mark.parametrize("t", [0.5, 2.0])
    def test_recorded_max_scheduler_achieves_max_value(self, t):
        """The max direction must keep working after the fix."""
        ctmdp = branching_model()
        result = timed_reachability(
            ctmdp, GOAL, t, epsilon=1e-10, objective="max", record_scheduler=True
        )
        replayed = evaluate_step_scheduler(
            ctmdp, GOAL, t, result.decisions, epsilon=1e-10
        )
        np.testing.assert_allclose(replayed, result.values, atol=1e-12)

    def test_greedy_wrapper_row_convention_matches_replay(self):
        """greedy_scheduler_from_decisions and evaluate_step_scheduler
        share the row convention: forward step j reads row j."""
        ctmdp = branching_model()
        result = timed_reachability(
            ctmdp, GOAL, 1.0, epsilon=1e-10, objective="min", record_scheduler=True
        )
        scheduler = greedy_scheduler_from_decisions(result.decisions)
        for step in (0, 1, len(result.decisions) + 5):
            row = min(step, len(result.decisions) - 1)
            expected = max(int(result.decisions[row][0]), 0)
            dist = scheduler.distribution(ctmdp, 0, step, [])
            assert dist[expected] == 1.0


class TestEvaluateStepScheduler:
    def test_t_zero_returns_goal_indicator(self):
        ctmdp = branching_model()
        values = evaluate_step_scheduler(
            ctmdp, GOAL, 0.0, np.zeros((1, 3), dtype=np.int32)
        )
        np.testing.assert_array_equal(values, [0.0, 1.0, 0.0])

    def test_rejects_bad_shapes(self):
        ctmdp = branching_model()
        with pytest.raises(ModelError):
            evaluate_step_scheduler(ctmdp, GOAL, 1.0, np.zeros((2, 5), dtype=np.int32))
        with pytest.raises(ModelError):
            evaluate_step_scheduler(ctmdp, GOAL, 1.0, np.zeros((0, 3), dtype=np.int32))

    def test_out_of_range_choices_clamp_like_step_scheduler(self):
        """-1 (no recorded choice) falls back to the first transition,
        matching StepScheduler's semantics."""
        ctmdp = branching_model()
        minus = np.full((1, 3), -1, dtype=np.int32)
        zeros = np.zeros((1, 3), dtype=np.int32)
        a = evaluate_step_scheduler(ctmdp, GOAL, 1.0, minus)
        b = evaluate_step_scheduler(ctmdp, GOAL, 1.0, zeros)
        np.testing.assert_array_equal(a, b)

    def test_bracketed_by_min_and_max(self):
        """Any recorded decision array evaluates between inf and sup."""
        ctmdp = branching_model()
        t = 1.5
        sup = timed_reachability(ctmdp, GOAL, t, epsilon=1e-10).values
        inf = timed_reachability(ctmdp, GOAL, t, epsilon=1e-10, objective="min").values
        rng = np.random.default_rng(7)
        counts = np.diff(ctmdp.choice_ptr)
        for _ in range(5):
            decisions = np.column_stack(
                [rng.integers(0, max(c, 1), size=40) for c in counts]
            ).astype(np.int32)
            values = evaluate_step_scheduler(ctmdp, GOAL, t, decisions, epsilon=1e-10)
            assert (values <= sup + 1e-9).all()
            assert (values >= inf - 1e-9).all()
