"""Tests for the qualitative (graph-based) reachability precomputations."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.ctmdp import CTMDP
from repro.core.qualitative import almost_sure_max, almost_sure_min, cannot_reach
from repro.core.reachability import unbounded_reachability
from repro.models.ftwc_direct import build_ctmdp
from tests.core.test_reachability_properties import models_with_goals


@pytest.fixture
def maze() -> CTMDP:
    """0 chooses between a sure path to 1(goal) and a coin that may drop
    into the trap 2; 3 is disconnected."""
    return CTMDP.from_transitions(
        4,
        [
            (0, "sure", {1: 1.0}),
            (0, "coin", {1: 1.0, 2: 1.0}),
            (1, "stay", {1: 1.0}),
            (2, "stay", {2: 1.0}),
            (3, "stay", {3: 1.0}),
        ],
    )


class TestCannotReach:
    def test_disconnected_state(self, maze):
        zero = cannot_reach(maze, [1])
        np.testing.assert_array_equal(zero, [False, False, True, True])

    def test_goal_state_reaches_itself(self, maze):
        assert not cannot_reach(maze, [1])[1]


class TestAlmostSure:
    def test_max_uses_the_sure_action(self, maze):
        sure = almost_sure_max(maze, [1])
        np.testing.assert_array_equal(sure, [True, True, False, False])

    def test_min_fails_because_of_the_coin(self, maze):
        always = almost_sure_min(maze, [1])
        # The adversary plays "coin" forever... one coin flip suffices to
        # possibly land in the trap, so state 0 is not almost-sure under
        # every scheduler.
        np.testing.assert_array_equal(always, [False, True, False, False])

    def test_single_action_chain(self):
        chain = CTMDP.from_transitions(
            3, [(0, "a", {1: 1.0}), (1, "a", {2: 1.0}), (2, "a", {2: 1.0})]
        )
        np.testing.assert_array_equal(almost_sure_max(chain, [2]), True)
        np.testing.assert_array_equal(almost_sure_min(chain, [2]), True)

    def test_ftwc_outage_unavoidable(self):
        """No repair policy can prevent the FTWC from eventually losing
        premium service: the goal is reached almost surely under every
        scheduler."""
        model = build_ctmdp(1)
        assert almost_sure_min(model.ctmdp, model.goal_mask).all()

    @given(data=models_with_goals())
    @settings(max_examples=40, deadline=None)
    def test_consistent_with_numeric_values(self, data):
        ctmdp, goal = data
        numeric_max = unbounded_reachability(ctmdp, goal, objective="max")
        numeric_min = unbounded_reachability(ctmdp, goal, objective="min")
        as_max = almost_sure_max(ctmdp, goal)
        as_min = almost_sure_min(ctmdp, goal)
        zero = cannot_reach(ctmdp, goal)
        # Qualitative one-sets must be numeric ones and vice versa
        # (generous tolerance: value iteration approaches 1 from below).
        assert (numeric_max[as_max] > 1.0 - 1e-6).all()
        assert (numeric_min[as_min] > 1.0 - 1e-6).all()
        assert (numeric_max[zero] < 1e-12).all()
        # Monotonicity: almost-sure-for-all implies almost-sure-for-some.
        assert (as_max | ~as_min).all()
