"""Tests for the CTMDP model class."""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.errors import ModelError, NonUniformError
from repro.models.zoo import two_phase_race_ctmdp


@pytest.fixture
def race() -> CTMDP:
    return two_phase_race_ctmdp()[0]


class TestConstruction:
    def test_from_transitions_sorts_by_source(self):
        ctmdp = CTMDP.from_transitions(
            2, [(1, "b", {0: 1.0}), (0, "a", {1: 1.0})]
        )
        assert list(ctmdp.sources) == [0, 1]
        assert ctmdp.labels == ["a", "b"]

    def test_same_action_twice_per_state_allowed(self):
        # The paper's "mild variation": several transitions may carry the
        # same label.
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {0: 1.0}), (0, "a", {1: 1.0}), (1, "x", {1: 1.0})]
        )
        assert ctmdp.num_choices(0) == 2

    def test_empty_rate_function_rejected(self):
        with pytest.raises(ModelError):
            CTMDP.from_transitions(2, [(0, "a", {})])

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ModelError):
            CTMDP.from_transitions(2, [(0, "a", {1: 0.0})])
        with pytest.raises(ModelError):
            CTMDP.from_transitions(2, [(0, "a", {1: -1.0})])

    def test_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            CTMDP.from_transitions(2, [(0, "a", {5: 1.0})])
        with pytest.raises(ModelError):
            CTMDP.from_transitions(2, [(9, "a", {0: 1.0})])

    def test_bad_initial_rejected(self):
        with pytest.raises(ModelError):
            CTMDP.from_transitions(1, [(0, "a", {0: 1.0})], initial=3)

    def test_state_names_checked(self):
        with pytest.raises(ModelError):
            CTMDP.from_transitions(2, [(0, "a", {1: 1.0})], state_names=["x"])


class TestQueries:
    def test_transitions_of(self, race):
        transitions = race.transitions_of(0)
        assert {t.action for t in transitions} == {"direct", "detour"}
        assert all(t.source == 0 for t in transitions)
        assert all(t.total_rate() == pytest.approx(11.0) for t in transitions)

    def test_num_choices(self, race):
        assert race.num_choices(0) == 2
        assert race.num_choices(1) == 1

    def test_states_without_choices(self):
        ctmdp = CTMDP.from_transitions(3, [(0, "a", {1: 1.0})])
        np.testing.assert_array_equal(ctmdp.states_without_choices(), [1, 2])

    def test_exit_rates(self, race):
        np.testing.assert_allclose(race.exit_rates(), 11.0)

    def test_statistics(self, race):
        stats = race.statistics()
        assert stats["states"] == 3
        assert stats["transitions"] == 4
        assert stats["max_choices"] == 2
        assert stats["memory_bytes"] > 0


class TestUniformity:
    def test_uniform(self, race):
        assert race.is_uniform()
        assert race.uniform_rate() == pytest.approx(11.0)

    def test_non_uniform_detected(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {1: 1.0}), (1, "b", {0: 5.0})]
        )
        assert not ctmdp.is_uniform()
        with pytest.raises(NonUniformError):
            ctmdp.uniform_rate()

    def test_probability_matrix_stochastic(self, race):
        p = race.probability_matrix()
        np.testing.assert_allclose(np.asarray(p.sum(axis=1)).ravel(), 1.0)


class TestInducedCTMC:
    def test_choice_selects_rows(self, race):
        chain = race.induced_ctmc([0, 0, 0])
        # Choice 0 in state 0 is "detour" or "direct" depending on sort
        # order; either way the chain is uniform at rate 11.
        assert chain.is_uniform()
        assert chain.uniform_rate() == pytest.approx(11.0)

    def test_wrong_length_rejected(self, race):
        with pytest.raises(ModelError):
            race.induced_ctmc([0])

    def test_choice_out_of_range_rejected(self, race):
        with pytest.raises(ModelError):
            race.induced_ctmc([5, 0, 0])

    def test_absorbing_states_stay_absorbing(self):
        ctmdp = CTMDP.from_transitions(2, [(0, "a", {1: 1.0})])
        chain = ctmdp.induced_ctmc([0, 0])
        assert chain.is_absorbing(1)


class TestEmbedding:
    def test_embedded_dtmdp_shares_structure(self, race):
        embedded = race.embedded_dtmdp()
        assert embedded.num_states == race.num_states
        assert embedded.actions == race.labels
        assert embedded.num_choices(0) == race.num_choices(0)

    def test_unbounded_reachability_agrees_with_embedded(self, race):
        """The continuous clock is irrelevant for 'ever reaches B':
        CTMDP unbounded reachability equals DTMDP unbounded
        reachability on the embedded jump chain."""
        import numpy as np

        from repro.core.reachability import unbounded_reachability
        from repro.mdp.value_iteration import (
            unbounded_reachability as dtmdp_unbounded,
        )

        goal = np.array([False, False, True])
        embedded = race.embedded_dtmdp()
        for objective in ("max", "min"):
            continuous = unbounded_reachability(race, goal, objective=objective)
            discrete = dtmdp_unbounded(embedded, goal, objective=objective)
            np.testing.assert_allclose(continuous, discrete, atol=1e-10)
