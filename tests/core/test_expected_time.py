"""Tests for expected hitting times in uniform CTMDPs."""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.core.expected_time import expected_reachability_time
from repro.errors import ModelError
from repro.models.ftwc_direct import build_ctmdp
from repro.models.job_scheduling import build_job_scheduling
from repro.models.zoo import two_phase_race_ctmdp


class TestAnalytic:
    def test_single_exponential_step(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {1: 3.0}), (1, "a", {1: 3.0})]
        )
        times = expected_reachability_time(ctmdp, [1])
        assert times[0] == pytest.approx(1.0 / 3.0)
        assert times[1] == 0.0

    def test_erlang_chain(self):
        # Three sequential rate-2 steps: expected time 1.5.
        ctmdp = CTMDP.from_transitions(
            4,
            [
                (0, "a", {1: 2.0}),
                (1, "a", {2: 2.0}),
                (2, "a", {3: 2.0}),
                (3, "a", {3: 2.0}),
            ],
        )
        times = expected_reachability_time(ctmdp, [3])
        np.testing.assert_allclose(times, [1.5, 1.0, 0.5, 0.0], atol=1e-9)

    def test_geometric_retry(self):
        # From 0: rate 1 to goal, rate 3 back to 0 (self-loop): success
        # per jump w.p. 1/4, jumps at rate 4 -> E[T] = 1/(4 * 1/4) = 1.
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {1: 1.0, 0: 3.0}), (1, "a", {1: 4.0})]
        )
        times = expected_reachability_time(ctmdp, [1])
        assert times[0] == pytest.approx(1.0, abs=1e-9)


class TestOptimisation:
    def test_min_picks_fast_branch(self):
        ctmdp, goal = two_phase_race_ctmdp(fast=10.0, slow=1.0)
        times = expected_reachability_time(ctmdp, goal, objective="min")
        worst = expected_reachability_time(ctmdp, goal, objective="max")
        # Direct branch: success rate 1 -> E[T] = 1.  Detour: two rate-10
        # phases with rate-1 self-loops at uniform rate 11: each phase
        # succeeds w.p. 10/11 per jump -> E = 2 * (11/10) * (1/11) = 0.2.
        assert times[0] == pytest.approx(0.2, abs=1e-9)
        assert worst[0] == pytest.approx(1.0, abs=1e-9)
        assert (times <= worst + 1e-12).all()

    def test_job_scheduling_single_processor_order_free(self):
        model = build_job_scheduling([1.0, 2.0, 4.0], processors=1)
        best = expected_reachability_time(model.ctmdp, model.goal_mask, "min")
        worst = expected_reachability_time(model.ctmdp, model.goal_mask, "max")
        expected = 1.0 + 0.5 + 0.25  # sum of service times
        assert best[model.ctmdp.initial] == pytest.approx(expected, abs=1e-8)
        assert worst[model.ctmdp.initial] == pytest.approx(expected, abs=1e-8)

    def test_job_scheduling_two_processors_scheduling_matters(self):
        model = build_job_scheduling([0.5, 1.0, 4.0], processors=2)
        best = expected_reachability_time(model.ctmdp, model.goal_mask, "min")
        worst = expected_reachability_time(model.ctmdp, model.goal_mask, "max")
        assert best[model.ctmdp.initial] < worst[model.ctmdp.initial] - 1e-6

    def test_ftwc_expected_time_to_outage(self):
        model = build_ctmdp(1)
        best = expected_reachability_time(model.ctmdp, model.goal_mask, "min")
        worst = expected_reachability_time(model.ctmdp, model.goal_mask, "max")
        start = model.ctmdp.initial
        # An outage takes hundreds of hours in expectation and the
        # adversarial repair assignment reaches it sooner.
        assert 100.0 < best[start] <= worst[start] < 1.0e6
        assert np.isfinite(worst[start])


class TestInfinite:
    def test_unreachable_goal_is_infinite(self):
        ctmdp = CTMDP.from_transitions(
            2, [(0, "a", {0: 1.0}), (1, "a", {1: 1.0})]
        )
        times = expected_reachability_time(ctmdp, [1])
        assert np.isinf(times[0])
        assert times[1] == 0.0

    def test_max_infinite_when_avoidable(self):
        # The scheduler can loop in 0 forever via the second action.
        ctmdp = CTMDP.from_transitions(
            2,
            [
                (0, "go", {1: 2.0}),
                (0, "loop", {0: 2.0}),
                (1, "stay", {1: 2.0}),
            ],
        )
        best = expected_reachability_time(ctmdp, [1], "min")
        worst = expected_reachability_time(ctmdp, [1], "max")
        assert best[0] == pytest.approx(0.5, abs=1e-9)
        assert np.isinf(worst[0])

    def test_empty_goal_all_infinite(self):
        ctmdp, _ = two_phase_race_ctmdp()
        assert np.isinf(expected_reachability_time(ctmdp, [])).all()

    def test_bad_objective_rejected(self):
        ctmdp, goal = two_phase_race_ctmdp()
        with pytest.raises(ModelError):
            expected_reachability_time(ctmdp, goal, objective="avg")
