"""Property-based tests for Algorithm 1 over random uniform CTMDPs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ctmdp import CTMDP
from repro.core.reachability import (
    evaluate_step_scheduler,
    timed_reachability,
    unbounded_reachability,
)
from repro.core.scheduler import greedy_scheduler_from_decisions
from repro.core.until import timed_until
from repro.ctmc.reachability import timed_reachability as ctmc_reachability


@st.composite
def random_uniform_ctmdps(draw, max_states: int = 6, rate: float = 3.0):
    """A random uniform CTMDP where every state has 1..3 transitions."""
    n = draw(st.integers(min_value=2, max_value=max_states))
    transitions = []
    for state in range(n):
        for choice in range(draw(st.integers(1, 3))):
            branches = draw(st.integers(1, 3))
            targets = [draw(st.integers(0, n - 1)) for _ in range(branches)]
            weights = [draw(st.floats(0.1, 1.0)) for _ in range(branches)]
            total = sum(weights)
            rates: dict[int, float] = {}
            for target, weight in zip(targets, weights):
                rates[target] = rates.get(target, 0.0) + rate * weight / total
            transitions.append((state, f"a{choice}", rates))
    return CTMDP.from_transitions(n, transitions)


@st.composite
def models_with_goals(draw):
    ctmdp = draw(random_uniform_ctmdps())
    mask = np.zeros(ctmdp.num_states, dtype=bool)
    mask[draw(st.integers(0, ctmdp.num_states - 1))] = True
    return ctmdp, mask


class TestInvariants:
    @given(data=models_with_goals(), t=st.floats(0.0, 5.0))
    @settings(max_examples=60, deadline=None)
    def test_values_in_unit_interval(self, data, t):
        ctmdp, goal = data
        for objective in ("max", "min"):
            values = timed_reachability(ctmdp, goal, t, objective=objective).values
            assert (values >= 0.0).all()
            assert (values <= 1.0).all()

    @given(data=models_with_goals())
    @settings(max_examples=40, deadline=None)
    def test_monotone_in_time(self, data):
        ctmdp, goal = data
        values = [
            timed_reachability(ctmdp, goal, t, epsilon=1e-9).value(0)
            for t in (0.2, 1.0, 4.0)
        ]
        assert values[0] <= values[1] + 1e-9
        assert values[1] <= values[2] + 1e-9

    @given(data=models_with_goals(), t=st.floats(0.1, 4.0))
    @settings(max_examples=40, deadline=None)
    def test_max_dominates_min(self, data, t):
        ctmdp, goal = data
        sup = timed_reachability(ctmdp, goal, t).values
        inf = timed_reachability(ctmdp, goal, t, objective="min").values
        assert (sup >= inf - 1e-10).all()

    @given(data=models_with_goals(), t=st.floats(0.1, 4.0))
    @settings(max_examples=30, deadline=None)
    def test_every_stationary_scheduler_bracketed(self, data, t):
        ctmdp, goal = data
        sup = timed_reachability(ctmdp, goal, t, epsilon=1e-9).values
        inf = timed_reachability(ctmdp, goal, t, epsilon=1e-9, objective="min").values
        counts = np.diff(ctmdp.choice_ptr)
        # Try the all-first and all-last stationary schedulers.
        for pick in (np.zeros_like(counts), counts - 1):
            chain = ctmdp.induced_ctmc(pick)
            values = ctmc_reachability(chain, goal, t, epsilon=1e-11)
            assert (values <= sup + 1e-7).all()
            assert (values >= inf - 1e-7).all()

    @given(data=models_with_goals(), t=st.floats(0.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_until_below_reachability(self, data, t):
        ctmdp, goal = data
        safe = np.ones(ctmdp.num_states, dtype=bool)
        safe[-1] = False  # forbid one state
        reach = timed_reachability(ctmdp, goal, t, epsilon=1e-9).values
        until = timed_until(ctmdp, safe, goal, t, epsilon=1e-9).values
        assert (until <= reach + 1e-9).all()

    @given(data=models_with_goals())
    @settings(max_examples=30, deadline=None)
    def test_timed_converges_to_unbounded(self, data):
        """Timed values approach the unbounded values from below, and
        the gap shrinks with the horizon.  (Random models can mix
        arbitrarily slowly, so no fixed horizon reaches the limit to
        fixed precision; monotone convergence is the robust claim.)"""
        ctmdp, goal = data
        eventual = unbounded_reachability(ctmdp, goal, tol=1e-13)
        short = timed_reachability(ctmdp, goal, 30.0, epsilon=1e-10).values
        long = timed_reachability(ctmdp, goal, 90.0, epsilon=1e-10).values
        assert (short <= eventual + 1e-7).all()
        assert (long <= eventual + 1e-7).all()
        gap_short = np.max(eventual - short)
        gap_long = np.max(eventual - long)
        assert gap_long <= gap_short + 1e-9

    @given(data=models_with_goals(), t=st.floats(0.1, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_epsilon_refinement_consistent(self, data, t):
        ctmdp, goal = data
        coarse = timed_reachability(ctmdp, goal, t, epsilon=1e-4).values
        fine = timed_reachability(ctmdp, goal, t, epsilon=1e-10).values
        np.testing.assert_allclose(coarse, fine, atol=2e-4)

    @given(data=models_with_goals(), t=st.floats(0.1, 3.0))
    @settings(max_examples=40, deadline=None)
    def test_recorded_scheduler_reproduces_optimum_both_objectives(self, data, t):
        """The extracted greedy scheduler is optimal for *both*
        objectives: replaying the recorded decisions through the exact
        Poisson recursion reproduces the optimal values.  (This is the
        property the min-objective extraction bug violated.)"""
        ctmdp, goal = data
        for objective in ("max", "min"):
            result = timed_reachability(
                ctmdp, goal, t, epsilon=1e-10, objective=objective,
                record_scheduler=True,
            )
            assert result.decisions is not None
            # The wrapper must accept exactly this array shape.
            scheduler = greedy_scheduler_from_decisions(result.decisions)
            assert len(scheduler.decisions) == result.iterations
            replayed = evaluate_step_scheduler(
                ctmdp, goal, t, result.decisions, epsilon=1e-10
            )
            np.testing.assert_allclose(replayed, result.values, atol=1e-9)

    @given(data=models_with_goals(), t=st.floats(0.1, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_recorded_scheduler_reproduces_value_when_stationary(self, data, t):
        """If the recorded optimal decisions happen to be the same at
        every step, the induced CTMC must achieve exactly the optimum."""
        ctmdp, goal = data
        result = timed_reachability(
            ctmdp, goal, t, epsilon=1e-10, record_scheduler=True
        )
        decisions = result.decisions
        if decisions is None or len(decisions) == 0:
            return
        stationary = (decisions == decisions[0]).all()
        if not stationary:
            return
        pick = np.maximum(decisions[0], 0)
        chain = ctmdp.induced_ctmc(pick)
        values = ctmc_reachability(chain, goal, t, epsilon=1e-12)
        np.testing.assert_allclose(values, result.values, atol=1e-7)
