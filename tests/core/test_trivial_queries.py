"""Trivially answerable queries must not require uniformity.

The ``t == 0`` / empty-goal early returns used to call
``ctmdp.uniform_rate()``, so a trivially-zero query on a non-uniform
model raised :class:`~repro.errors.NonUniformError` although its answer
(the goal indicator) does not depend on the time dynamics at all.
"""

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.core.reachability import PreparedTimedReachability, timed_reachability
from repro.core.until import timed_until
from repro.errors import NonUniformError


def non_uniform_model() -> CTMDP:
    """Exit rates 2 and 5 -- decidedly not uniform."""
    return CTMDP.from_transitions(
        2,
        [
            (0, "a", {1: 2.0}),
            (1, "b", {0: 5.0}),
        ],
    )


def uniform_model() -> CTMDP:
    return CTMDP.from_transitions(
        2,
        [
            (0, "a", {1: 3.0}),
            (1, "b", {0: 3.0}),
        ],
    )


class TestReachabilityEarlyReturns:
    def test_empty_goal_on_non_uniform_model_does_not_raise(self):
        result = timed_reachability(non_uniform_model(), [], 10.0)
        np.testing.assert_array_equal(result.values, [0.0, 0.0])
        assert result.iterations == 0
        assert result.uniform_rate == 0.0

    @pytest.mark.parametrize("t", [0.0, 7.5])
    def test_empty_goal_every_time_bound(self, t):
        result = timed_reachability(non_uniform_model(), [], t, objective="min")
        assert result.values.sum() == 0.0
        assert result.time_bound == t

    def test_t_zero_on_uniform_model_reports_prepared_rate(self):
        """With a prepared (uniform) solver, the degenerate t=0 solve
        reports the actual rate without recomputing it."""
        prepared = PreparedTimedReachability(uniform_model(), [1])
        result = prepared.solve(0.0)
        np.testing.assert_array_equal(result.values, [0.0, 1.0])
        assert result.uniform_rate == 3.0
        assert result.iterations == 0

    def test_empty_goal_prepared_solver_reports_zero_rate(self):
        """The unprepared path (empty goal): no rate is ever computed,
        0.0 is reported."""
        prepared = PreparedTimedReachability(non_uniform_model(), [])
        result = prepared.solve(123.0)
        assert result.uniform_rate == 0.0
        assert not result.values.any()

    def test_preparing_nonempty_goal_on_non_uniform_still_fails_fast(self):
        """Non-trivial analyses on non-uniform models stay rejected at
        preparation -- the algorithm would be unsound there."""
        with pytest.raises(NonUniformError):
            PreparedTimedReachability(non_uniform_model(), [1])

    def test_t_zero_nonempty_goal_uniform_via_front_end(self):
        result = timed_reachability(uniform_model(), [1], 0.0)
        np.testing.assert_array_equal(result.values, [0.0, 1.0])


class TestUntilEarlyReturns:
    def test_t_zero_on_non_uniform_model_does_not_raise(self):
        model = non_uniform_model()
        result = timed_until(model, [0], [1], 0.0)
        np.testing.assert_array_equal(result.values, [0.0, 1.0])
        assert result.uniform_rate == 0.0
        assert result.iterations == 0

    def test_empty_goal_on_non_uniform_model_does_not_raise(self):
        model = non_uniform_model()
        result = timed_until(model, [0, 1], [], 50.0)
        assert not result.values.any()
        assert result.uniform_rate == 0.0

    def test_degenerate_until_on_uniform_model_reports_rate(self):
        """On a uniform model the early return still reports the true
        rate, preserving the old behaviour where it was well-defined."""
        result = timed_until(uniform_model(), [0], [1], 0.0)
        assert result.uniform_rate == 3.0

    def test_non_trivial_until_on_non_uniform_still_raises(self):
        with pytest.raises(NonUniformError):
            timed_until(non_uniform_model(), [0], [1], 1.0)
