"""Qualitative precomputation in the numeric solvers.

With ``precompute=True`` the timed engines clamp the Prob0 set of the
requested objective and fold the goal states into a scalar recursion;
the unbounded engine additionally pins the Prob1 set.  The clamped
sweep is *not* bitwise-identical to the plain one (different summation
order over the reduced sub-matrix), so all comparisons here are within
the solver epsilon -- the engine layer keeps ``precompute`` off by
default exactly because its batching tests assert bitwise equality.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ctmdp import CTMDP
from repro.core.reachability import (
    replay_step_scheduler,
    timed_reachability,
    unbounded_reachability,
)
from repro.core.until import timed_until
from repro.models import ftwc_direct
from tests.core.test_reachability_properties import models_with_goals


class TestTimedAgreement:
    @given(data=models_with_goals(), t=st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_reachability_clamped_matches_plain(self, data, t):
        ctmdp, goal = data
        for objective in ("max", "min"):
            plain = timed_reachability(
                ctmdp, goal, t, epsilon=1e-10, objective=objective
            )
            clamped = timed_reachability(
                ctmdp, goal, t, epsilon=1e-10, objective=objective,
                precompute=True,
            )
            np.testing.assert_allclose(clamped.values, plain.values, atol=1e-9)
            # At least the goal states leave the sweep.
            assert clamped.states_eliminated >= int(goal.sum())
            assert clamped.certificate.states_eliminated == clamped.states_eliminated
            assert plain.states_eliminated == 0

    @given(data=models_with_goals(), t=st.floats(0.1, 10.0))
    @settings(max_examples=40, deadline=None)
    def test_until_clamped_matches_plain(self, data, t):
        ctmdp, goal = data
        safe = np.ones(ctmdp.num_states, dtype=bool)
        safe[-1] = False
        for objective in ("max", "min"):
            plain = timed_until(
                ctmdp, safe, goal, t, epsilon=1e-10, objective=objective
            )
            clamped = timed_until(
                ctmdp, safe, goal, t, epsilon=1e-10, objective=objective,
                precompute=True,
            )
            np.testing.assert_allclose(clamped.values, plain.values, atol=1e-9)
            assert clamped.states_eliminated >= int(goal.sum())


class TestUnboundedAgreement:
    @given(data=models_with_goals())
    @settings(max_examples=40, deadline=None)
    def test_clamped_matches_plain(self, data):
        """The strategy's weights bound the VI contraction factor away
        from 1, so plain VI at tol=1e-13 is well inside 1e-6 of the
        fixpoint the clamped solve pins exactly."""
        ctmdp, goal = data
        for objective in ("max", "min"):
            plain = unbounded_reachability(ctmdp, goal, objective=objective, tol=1e-13)
            clamped = unbounded_reachability(
                ctmdp, goal, objective=objective, tol=1e-13, precompute=True
            )
            np.testing.assert_allclose(clamped, plain, atol=1e-6)


class TestSchedulerReplay:
    def test_clamped_min_scheduler_replays_the_zero(self):
        """Clamped min-states carry a goal-avoiding witness choice, so
        replaying the recorded scheduler reproduces the exact zero."""
        ctmdp = CTMDP.from_transitions(
            4,
            [
                (0, "sure", {1: 2.0}),
                (0, "coin", {1: 1.0, 2: 1.0}),
                (1, "stay", {1: 2.0}),
                (2, "stay", {2: 2.0}),
                (3, "stay", {3: 2.0}),
            ],
        )
        goal = np.array([False, True, False, False])
        result = timed_reachability(
            ctmdp, goal, 2.0, epsilon=1e-10, objective="min",
            record_scheduler=True, precompute=True,
        )
        assert result.states_eliminated == 3  # goal 1 + zero states 2, 3
        replayed = replay_step_scheduler(
            ctmdp, goal, 2.0, result.decisions, epsilon=1e-10
        )
        np.testing.assert_allclose(replayed.values, result.values, atol=1e-9)
        assert replayed.values[2] == 0.0 and replayed.values[3] == 0.0

    @given(data=models_with_goals(), t=st.floats(0.1, 5.0))
    @settings(max_examples=25, deadline=None)
    def test_recorded_scheduler_reproduces_clamped_values(self, data, t):
        ctmdp, goal = data
        for objective in ("max", "min"):
            result = timed_reachability(
                ctmdp, goal, t, epsilon=1e-10, objective=objective,
                record_scheduler=True, precompute=True,
            )
            replayed = replay_step_scheduler(
                ctmdp, goal, t, result.decisions, epsilon=1e-10
            )
            np.testing.assert_allclose(replayed.values, result.values, atol=1e-9)


class TestFTWCAnchors:
    def test_timed_value_and_elimination(self):
        """FTWC N=2, t=100: the 211 goal states fold into the scalar
        recursion (the Prob0 sets are empty) and the worst-case value
        matches the plain sweep to solver precision."""
        model = ftwc_direct.build_ctmdp(2)
        plain = timed_reachability(model.ctmdp, model.goal_mask, 100.0, epsilon=1e-6)
        clamped = timed_reachability(
            model.ctmdp, model.goal_mask, 100.0, epsilon=1e-6, precompute=True
        )
        assert clamped.states_eliminated == 211
        assert abs(clamped.value(model.ctmdp.initial) - plain.value(model.ctmdp.initial)) < 1e-9
        assert clamped.certificate.healthy

    def test_unbounded_precompute_beats_the_convergence_tail(self):
        """Every FTWC state is Prob1E, so Pmax(F goal) = 1 exactly.
        Plain VI stalls below 1 (the per-iteration delta under-runs the
        tolerance long before the slow-mixing fixpoint); the clamped
        solve pins the one-set and returns the exact answer.  This is
        the case for qualitative precomputation: it is not merely
        faster, on slow-mixing models it is *more correct*."""
        model = ftwc_direct.build_ctmdp(2)
        clamped = unbounded_reachability(
            model.ctmdp, model.goal_mask, objective="max", precompute=True
        )
        assert (clamped == 1.0).all()
        plain = unbounded_reachability(model.ctmdp, model.goal_mask, objective="max")
        assert (plain <= 1.0).all()
        # Document the tail: plain VI visibly under-shoots on this model.
        assert plain.min() < 1.0 - 1e-6
