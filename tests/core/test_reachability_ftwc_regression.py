"""Regression anchors: FTWC probabilities pinned to computed values.

These values were produced by this library (epsilon = 1e-6, the paper's
precision) and cross-validated between the compositional and the direct
route, against the CTMC solver on induced chains, and by simulation.
Pinning them guards future changes to any engine in the pipeline against
silent numeric drift.
"""

import pytest

from repro.core.reachability import timed_reachability
from repro.models.ftwc_direct import build_ctmdp

# (n, t) -> worst-case probability of losing premium service within t h.
ANCHORS = {
    (1, 100.0): 8.828159e-04,
    (1, 1000.0): 8.987978e-03,
    (1, 30000.0): 2.377584e-01,
    (2, 100.0): 9.394285e-04,
    (4, 100.0): 1.849108e-03,
    (8, 100.0): 3.719853e-03,
    (16, 100.0): 7.455115e-03,
}


@pytest.mark.parametrize("n, t", sorted(ANCHORS))
def test_worst_case_probability_anchor(n, t):
    if (n, t) == (1, 30000.0):
        pytest.skip("long horizon covered by the slow variant below")
    model = build_ctmdp(n)
    value = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-6).value(
        model.ctmdp.initial
    )
    assert value == pytest.approx(ANCHORS[(n, t)], rel=1e-5)


@pytest.mark.slow
def test_long_horizon_anchor():
    model = build_ctmdp(1)
    value = timed_reachability(
        model.ctmdp, model.goal_mask, 30000.0, epsilon=1e-6
    ).value(model.ctmdp.initial)
    assert value == pytest.approx(ANCHORS[(1, 30000.0)], rel=1e-5)


def test_min_close_to_max_but_below():
    """For the FTWC the repair-assignment choice matters little (the
    paper's Figure 4 curves almost coincide) but the ordering is strict
    at sizes with real contention."""
    model = build_ctmdp(4)
    t = 1000.0
    sup = timed_reachability(model.ctmdp, model.goal_mask, t, epsilon=1e-8).value(0)
    inf = timed_reachability(
        model.ctmdp, model.goal_mask, t, epsilon=1e-8, objective="min"
    ).value(0)
    assert inf < sup
    assert inf > 0.98 * sup
