"""Tests for time-bounded until (CTMDP and CTMC)."""

import math

import numpy as np
import pytest

from repro.core.ctmdp import CTMDP
from repro.core.reachability import timed_reachability
from repro.core.until import timed_until
from repro.ctmc.model import CTMC
from repro.ctmc.until import timed_until as ctmc_timed_until
from repro.errors import ModelError
from repro.models.zoo import two_phase_race_ctmdp


@pytest.fixture
def corridor() -> tuple[CTMDP, np.ndarray, np.ndarray]:
    """0 -> 1 -> 2(goal); 0 can also fall into 3 (unsafe) which leads to
    the goal as well -- until must not count the detour through 3."""
    ctmdp = CTMDP.from_transitions(
        4,
        [
            (0, "go", {1: 1.0, 3: 1.0}),
            (1, "go", {2: 1.0, 1: 1.0}),
            (2, "stay", {2: 2.0}),
            (3, "up", {2: 1.0, 3: 1.0}),
        ],
    )
    safe = np.array([True, True, False, False])
    goal = np.array([False, False, True, False])
    return ctmdp, safe, goal


class TestCTMDPUntil:
    def test_reduces_to_reachability_with_full_safe_set(self):
        ctmdp, goal = two_phase_race_ctmdp()
        safe = np.ones(ctmdp.num_states, dtype=bool)
        for t in (0.1, 1.0):
            reach = timed_reachability(ctmdp, goal, t, epsilon=1e-9)
            until = timed_until(ctmdp, safe, goal, t, epsilon=1e-9)
            np.testing.assert_allclose(until.values, reach.values, atol=1e-12)

    def test_unsafe_detour_excluded(self, corridor):
        ctmdp, safe, goal = corridor
        t = 2.0
        until = timed_until(ctmdp, safe, goal, t, epsilon=1e-10)
        reach = timed_reachability(ctmdp, goal, t, epsilon=1e-10)
        # Reachability counts the path through state 3; until does not.
        assert until.value(0) < reach.value(0)
        # Blocked state has value zero although it can reach the goal.
        assert until.values[3] == 0.0
        assert until.values[2] == 1.0

    def test_analytic_value(self, corridor):
        """From 0: the first jump must go to 1 (prob 1/2), then the next
        effective event must be the 1->2 move; all clocks race at rate 2
        with success probability 1/2 per step -- an explicit Poisson sum
        validates the implementation."""
        ctmdp, safe, goal = corridor
        t = 1.3
        until = timed_until(ctmdp, safe, goal, t, epsilon=1e-12)
        # P = sum_{n>=2} psi(n; 2t) * P(two successes happen as the
        # first two effective steps among n jumps): jump chain from 0:
        # to 1 w.p. 1/2 (else blocked); from 1 self-loop w.p. 1/2 each
        # step until the success.  Expand: P = sum_{k>=2} psi(k)
        # * 1/2 * (1 - (1/2)^{k-1}).
        lam = 2.0 * t
        total = 0.0
        for k in range(2, 200):
            psi = math.exp(-lam + k * math.log(lam) - math.lgamma(k + 1))
            total += psi * 0.5 * (1.0 - 0.5 ** (k - 1))
        assert until.value(0) == pytest.approx(total, abs=1e-9)

    def test_min_objective(self, corridor):
        ctmdp, safe, goal = corridor
        sup = timed_until(ctmdp, safe, goal, 1.0, objective="max")
        inf = timed_until(ctmdp, safe, goal, 1.0, objective="min")
        assert (inf.values <= sup.values + 1e-12).all()

    def test_time_zero(self, corridor):
        ctmdp, safe, goal = corridor
        result = timed_until(ctmdp, safe, goal, 0.0)
        np.testing.assert_allclose(result.values, goal.astype(float))

    def test_empty_goal(self, corridor):
        ctmdp, safe, _ = corridor
        result = timed_until(ctmdp, safe, [], 1.0)
        np.testing.assert_allclose(result.values, 0.0)

    def test_bad_objective_rejected(self, corridor):
        ctmdp, safe, goal = corridor
        with pytest.raises(ModelError):
            timed_until(ctmdp, safe, goal, 1.0, objective="avg")

    def test_negative_time_rejected(self, corridor):
        ctmdp, safe, goal = corridor
        with pytest.raises(ModelError):
            timed_until(ctmdp, safe, goal, -1.0)


class TestCTMCUntil:
    def test_matches_ctmdp_on_single_action_chain(self, corridor):
        ctmdp, safe, goal = corridor
        # Induce the (only) stationary scheduler's CTMC and compare.
        chain = ctmdp.induced_ctmc([0, 0, 0, 0])
        t = 1.3
        expected = timed_until(ctmdp, safe, goal, t, epsilon=1e-12)
        actual = ctmc_timed_until(chain, safe, goal, t, epsilon=1e-12)
        np.testing.assert_allclose(actual, expected.values, atol=1e-9)

    def test_reduces_to_reachability(self):
        from repro.ctmc.reachability import timed_reachability as ctmc_reach

        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)])
        safe = np.ones(3, dtype=bool)
        for t in (0.5, 2.0):
            np.testing.assert_allclose(
                ctmc_timed_until(chain, safe, [2], t),
                ctmc_reach(chain, [2], t),
                atol=1e-12,
            )

    def test_blocked_states_zero(self):
        chain = CTMC.from_transitions(3, [(0, 1, 1.0), (1, 2, 1.0)])
        safe = np.array([True, False, False])
        values = ctmc_timed_until(chain, safe, [2], 5.0)
        # The only route passes through blocked state 1.
        assert values[0] == pytest.approx(0.0, abs=1e-12)
        assert values[1] == 0.0
        assert values[2] == 1.0
