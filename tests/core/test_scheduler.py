"""Tests for the scheduler classes."""

import numpy as np
import pytest

from repro.core.scheduler import (
    StationaryScheduler,
    StepScheduler,
    UniformRandomScheduler,
    greedy_scheduler_from_decisions,
)
from repro.errors import SchedulerError
from repro.models.zoo import two_phase_race_ctmdp


@pytest.fixture
def race():
    return two_phase_race_ctmdp()[0]


class TestStationary:
    def test_deterministic_point_mass(self, race):
        scheduler = StationaryScheduler.from_list([1, 0, 0])
        dist = scheduler.distribution(race, 0, 0, [])
        np.testing.assert_allclose(dist, [0.0, 1.0])

    def test_out_of_range_choice_rejected(self, race):
        scheduler = StationaryScheduler.from_list([5, 0, 0])
        with pytest.raises(SchedulerError):
            scheduler.distribution(race, 0, 0, [])

    def test_absorbing_state_rejected(self):
        from repro.core.ctmdp import CTMDP

        ctmdp = CTMDP.from_transitions(2, [(0, "a", {1: 1.0})])
        scheduler = StationaryScheduler.from_list([0, 0])
        with pytest.raises(SchedulerError):
            scheduler.distribution(ctmdp, 1, 0, [])


class TestStep:
    def test_row_selected_by_step(self, race):
        decisions = np.array([[0, 0, 0], [1, 0, 0]], dtype=np.int32)
        scheduler = StepScheduler(decisions=decisions)
        np.testing.assert_allclose(scheduler.distribution(race, 0, 0, []), [1.0, 0.0])
        np.testing.assert_allclose(scheduler.distribution(race, 0, 1, []), [0.0, 1.0])

    def test_steps_beyond_horizon_reuse_last_row(self, race):
        decisions = np.array([[1, 0, 0]], dtype=np.int32)
        scheduler = StepScheduler(decisions=decisions)
        np.testing.assert_allclose(scheduler.distribution(race, 0, 99, []), [0.0, 1.0])

    def test_negative_marker_falls_back_to_first(self, race):
        decisions = np.array([[-1, -1, -1]], dtype=np.int32)
        scheduler = StepScheduler(decisions=decisions)
        np.testing.assert_allclose(scheduler.distribution(race, 0, 0, []), [1.0, 0.0])

    def test_greedy_wrapper(self):
        decisions = np.zeros((3, 2), dtype=np.int32)
        scheduler = greedy_scheduler_from_decisions(decisions)
        assert isinstance(scheduler, StepScheduler)
        assert scheduler.decisions.shape == (3, 2)


class TestUniformRandom:
    def test_equal_weights(self, race):
        scheduler = UniformRandomScheduler()
        np.testing.assert_allclose(scheduler.distribution(race, 0, 0, []), [0.5, 0.5])
        np.testing.assert_allclose(scheduler.distribution(race, 1, 0, []), [1.0])
