"""Unit tests for the shared segmented-optimisation helpers."""

import numpy as np
import pytest

from repro.core.segments import (
    TIE_TOLERANCE,
    SegmentIndex,
    segment_argbest,
    segment_reduce,
    validate_objective,
)
from repro.errors import ModelError


def index_for(counts: list[int]) -> SegmentIndex:
    ptr = np.concatenate(([0], np.cumsum(counts)))
    return SegmentIndex.from_choice_ptr(ptr)


class TestSegmentIndex:
    def test_skips_empty_segments(self):
        segments = index_for([2, 0, 3, 0])
        np.testing.assert_array_equal(segments.nonempty, [True, False, True, False])
        np.testing.assert_array_equal(segments.starts, [0, 2])
        np.testing.assert_array_equal(segments.counts, [2, 3])

    def test_all_empty(self):
        segments = index_for([0, 0])
        assert segments.starts.size == 0
        assert not segments.nonempty.any()


class TestSegmentReduce:
    def test_max_and_min(self):
        segments = index_for([2, 3])
        values = np.array([1.0, 4.0, 2.0, 9.0, 3.0])
        np.testing.assert_array_equal(
            segment_reduce(values, segments, "max"), [4.0, 9.0]
        )
        np.testing.assert_array_equal(
            segment_reduce(values, segments, "min"), [1.0, 2.0]
        )

    def test_empty_index_gives_empty_result(self):
        segments = index_for([0])
        assert segment_reduce(np.empty(0), segments, "max").size == 0
        assert segment_reduce(np.empty(0), segments, "min").size == 0


class TestSegmentArgbest:
    def test_max_picks_first_maximiser(self):
        segments = index_for([3, 2])
        values = np.array([1.0, 5.0, 5.0, 2.0, 7.0])
        best = segment_reduce(values, segments, "max")
        np.testing.assert_array_equal(
            segment_argbest(values, best, segments, "max"), [1, 1]
        )

    def test_min_picks_first_minimiser(self):
        """The historical bug: with ``>=`` on both objectives this
        returned [0, 0] -- every value is >= the minimum."""
        segments = index_for([3, 2])
        values = np.array([4.0, 1.0, 2.0, 9.0, 3.0])
        best = segment_reduce(values, segments, "min")
        np.testing.assert_array_equal(
            segment_argbest(values, best, segments, "min"), [1, 1]
        )

    def test_ties_resolve_to_first_within_tolerance(self):
        segments = index_for([3])
        values = np.array([2.0, 2.0 + TIE_TOLERANCE / 2, 1.0 + 1.0])
        best = segment_reduce(values, segments, "max")
        assert segment_argbest(values, best, segments, "max")[0] == 0

    def test_local_indices_are_relative_to_segment(self):
        segments = index_for([2, 2])
        values = np.array([0.0, 1.0, 0.0, 1.0])
        best = segment_reduce(values, segments, "max")
        np.testing.assert_array_equal(
            segment_argbest(values, best, segments, "max"), [1, 1]
        )

    def test_empty_index(self):
        segments = index_for([0])
        assert segment_argbest(np.empty(0), np.empty(0), segments, "min").size == 0

    def test_randomised_against_python_argbest(self):
        rng = np.random.default_rng(42)
        for _ in range(25):
            counts = rng.integers(1, 5, size=rng.integers(1, 8)).tolist()
            segments = index_for(counts)
            values = rng.normal(size=int(np.sum(counts)))
            for objective, pick in (("max", np.argmax), ("min", np.argmin)):
                best = segment_reduce(values, segments, objective)
                got = segment_argbest(values, best, segments, objective)
                expected = [
                    pick(values[s : s + c])
                    for s, c in zip(segments.starts, segments.counts)
                ]
                np.testing.assert_array_equal(got, expected)


class TestValidateObjective:
    def test_accepts_max_and_min(self):
        assert validate_objective("max") == "max"
        assert validate_objective("min") == "min"

    @pytest.mark.parametrize("bad", ["sup", "", "MAX", None])
    def test_rejects_everything_else(self, bad):
        with pytest.raises(ModelError):
            validate_objective(bad)
