"""Tests for the uIMC-to-uCTMDP transformation (Theorem 1, executably).

The preservation theorem is exercised in three ways:

* deterministic closed IMCs (no real nondeterminism) are compared
  against an independently built CTMC of the same process;
* for nondeterministic models, simulation under arbitrary schedulers
  must fall between the transformed model's ``inf`` and ``sup``;
* the transformation's structural bookkeeping (state maps, statistics)
  is validated on random models.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.reachability import timed_reachability
from repro.core.scheduler import UniformRandomScheduler
from repro.ctmc.model import CTMC
from repro.ctmc.reachability import timed_reachability as ctmc_reachability
from repro.errors import TransformationError
from repro.imc.model import IMC, TAU, IMCBuilder
from repro.imc.transform import imc_to_ctmdp
from repro.sim.simulate import simulate_ctmdp_reachability
from tests.conftest import random_closed_uniform_imcs


class TestDeterministicEquivalence:
    def test_ctmc_as_imc_gives_identical_reachability(self):
        # Uniform chain: every state has exit rate 3.
        transitions = [(0, 1, 2.0), (0, 2, 1.0), (1, 2, 0.5), (1, 0, 2.5), (2, 0, 3.0)]
        chain = CTMC.from_transitions(3, transitions)
        imc = IMC(num_states=3, markov=[(s, r, t) for s, t, r in transitions])
        result = imc_to_ctmdp(imc)
        goal = result.goal_mask_from_predicate(lambda s: s == 2)
        for t in (0.3, 1.0, 4.0):
            expected = ctmc_reachability(chain, [2], t, epsilon=1e-12)[0]
            value = timed_reachability(result.ctmdp, goal, t, epsilon=1e-10)
            assert value.value(result.ctmdp.initial) == pytest.approx(expected, abs=1e-8)

    def test_tau_chains_are_timeless(self):
        # 0 -(rate 2)-> 1 -tau-> 2 -tau-> 3 -(rate 2)-> goal 4.
        builder = IMCBuilder()
        states = [builder.state(f"s{k}") for k in range(5)]
        builder.markov(states[0], 2.0, states[1])
        builder.tau(states[1], states[2])
        builder.tau(states[2], states[3])
        builder.markov(states[3], 2.0, states[4])
        builder.tau(states[4], states[0])  # keep it deadlock-free
        # State 4 must not be absorbing and not Markov... it has tau back.
        imc = builder.build()
        result = imc_to_ctmdp(imc)
        # s4 is visited instantaneously (it tau-escapes immediately), so
        # the goal is mapped via the interactive configuration.
        goal = result.goal_mask_from_predicate(lambda s: s == states[4], via="interactive")
        t = 1.7
        expected = 1.0 - math.exp(-2.0 * t) * (1.0 + 2.0 * t)  # Erlang(2, 2)
        value = timed_reachability(result.ctmdp, goal, t, epsilon=1e-10)
        assert value.value(result.ctmdp.initial) == pytest.approx(expected, abs=1e-8)

    def test_max_equals_min_without_nondeterminism(self):
        imc = IMC(
            num_states=3,
            interactive=[(1, TAU, 2)],
            markov=[(0, 1.0, 1), (2, 1.0, 0)],
        )
        result = imc_to_ctmdp(imc)
        goal = result.goal_mask_from_predicate(lambda s: s == 2)
        sup = timed_reachability(result.ctmdp, goal, 2.0)
        inf = timed_reachability(result.ctmdp, goal, 2.0, objective="min")
        np.testing.assert_allclose(sup.values, inf.values, atol=1e-12)


class TestNondeterministicBounds:
    def test_simulation_between_inf_and_sup(self, rng):
        # A genuine choice: after the first jump, tau-branch to a fast
        # or a slow path towards the goal.
        builder = IMCBuilder()
        start = builder.state("start")
        choice = builder.state("choice")
        fast = builder.state("fast")
        slow = builder.state("slow")
        goal_state = builder.state("goal")
        builder.markov(start, 4.0, choice)
        builder.tau(choice, fast)
        builder.tau(choice, slow)
        builder.markov(fast, 4.0, goal_state)
        builder.markov(slow, 1.0, goal_state)
        builder.markov(slow, 3.0, start)
        builder.tau(goal_state, start)
        imc = builder.build(initial=start)
        result = imc_to_ctmdp(imc, require_uniform=True)
        mask = result.goal_mask_from_predicate(lambda s: s == goal_state, via="interactive")
        t = 0.8
        sup = timed_reachability(result.ctmdp, mask, t, epsilon=1e-8)
        inf = timed_reachability(result.ctmdp, mask, t, epsilon=1e-8, objective="min")
        assert inf.value(result.ctmdp.initial) < sup.value(result.ctmdp.initial)
        estimate = simulate_ctmdp_reachability(
            result.ctmdp,
            UniformRandomScheduler(),
            goal=set(np.flatnonzero(mask)),
            t=t,
            runs=4000,
            rng=rng,
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= sup.value(result.ctmdp.initial) + 1e-9
        assert high >= inf.value(result.ctmdp.initial) - 1e-9


class TestStructure:
    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=50, deadline=None)
    def test_transform_produces_uniform_ctmdp(self, imc):
        result = imc_to_ctmdp(imc, require_uniform=True)
        assert result.ctmdp.is_uniform(tol=1e-6)
        assert result.ctmdp.num_states == len(result.state_original)
        assert result.ctmdp.num_transitions == len(result.row_original)

    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=50, deadline=None)
    def test_statistics_consistent(self, imc):
        result = imc_to_ctmdp(imc)
        stats = result.statistics
        assert stats.interactive_states == result.ctmdp.num_states
        assert stats.interactive_transitions == result.ctmdp.num_transitions
        assert stats.markov_states >= 1
        assert stats.memory_bytes > 0
        assert stats.transform_seconds >= 0.0

    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=50, deadline=None)
    def test_goal_masks_well_formed(self, imc):
        result = imc_to_ctmdp(imc)
        for via in ("markov", "interactive"):
            mask = result.goal_mask_from_predicate(lambda s: s % 2 == 0, via=via)
            assert mask.shape == (result.ctmdp.num_states,)
        everything = result.goal_mask_from_predicate(lambda s: True, via="markov")
        assert everything.all()
        nothing = result.goal_mask_from_predicate(lambda s: False, via="markov")
        assert not nothing.any()

    def test_unknown_goal_mapping_rejected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 1.0, 0)])
        result = imc_to_ctmdp(imc)
        with pytest.raises(ValueError):
            result.goal_mask_from_predicate(lambda s: True, via="nonsense")

    def test_require_uniform_rejects_nonuniform(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 5.0, 0)])
        with pytest.raises(TransformationError):
            imc_to_ctmdp(imc, require_uniform=True)
