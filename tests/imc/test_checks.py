"""Tests for the IMC linter."""

import pytest

from repro.imc.checks import Severity, lint_imc
from repro.imc.model import IMC, TAU
from repro.models.ftwc import build_system_imc


def codes(findings, severity=None):
    return {
        f.code
        for f in findings
        if severity is None or f.severity is severity
    }


class TestLint:
    def test_clean_model(self):
        imc = IMC(num_states=2, markov=[(0, 2.0, 1), (1, 2.0, 0)])
        assert lint_imc(imc) == []

    def test_zeno_cycle_detected(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1), (1, TAU, 0)],
            markov=[(2, 1.0, 0)],
        )
        findings = lint_imc(imc)
        assert "zeno-cycle" in codes(findings, Severity.ERROR)
        cycle = next(f for f in findings if f.code == "zeno-cycle")
        assert set(cycle.states) == {0, 1}

    def test_tau_self_loop_is_zeno(self):
        imc = IMC(num_states=1, interactive=[(0, TAU, 0)])
        assert "zeno-cycle" in codes(lint_imc(imc), Severity.ERROR)

    def test_deadlock_detected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1)])
        findings = lint_imc(imc)
        assert "deadlock" in codes(findings, Severity.ERROR)
        dead = next(f for f in findings if f.code == "deadlock")
        assert dead.states == (1,)

    def test_non_uniformity_detected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 5.0, 0)])
        findings = lint_imc(imc)
        assert "non-uniform" in codes(findings, Severity.ERROR)
        offender = next(f for f in findings if f.code == "non-uniform")
        assert offender.states == (0,)

    def test_unstable_states_not_flagged_non_uniform(self):
        imc = IMC(
            num_states=2,
            interactive=[(1, TAU, 0)],
            markov=[(0, 1.0, 1), (1, 99.0, 0)],
        )
        assert "non-uniform" not in codes(lint_imc(imc))

    def test_visible_actions_warned_in_closed_view(self):
        imc = IMC(
            num_states=2,
            interactive=[(0, "grab", 1)],
            markov=[(1, 1.0, 0)],
        )
        findings = lint_imc(imc, closed=True)
        assert "visible-actions" in codes(findings, Severity.WARNING)
        assert "visible-actions" not in codes(lint_imc(imc, closed=False))

    def test_unreachable_states_warned(self):
        imc = IMC(num_states=3, markov=[(0, 1.0, 0), (2, 1.0, 2)])
        findings = lint_imc(imc)
        assert "unreachable" in codes(findings, Severity.WARNING)

    def test_errors_sorted_first(self):
        imc = IMC(
            num_states=4,
            interactive=[(0, "a", 1)],
            markov=[(1, 1.0, 0), (3, 9.0, 3)],
        )
        findings = lint_imc(imc)
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities, key=lambda s: s is not Severity.ERROR
        )

    def test_ftwc_system_is_clean(self):
        system = build_system_imc(1)
        findings = lint_imc(system.imc)
        assert codes(findings, Severity.ERROR) == set()
