"""Tests for the IMC linter (via the ``repro.imc.checks`` compat facade).

The linter moved into :mod:`repro.lint.analyzers` and now emits stable
codes instead of slugs; this suite covers the same scenarios under the
new codes and pins the backwards-compatible re-exports.
"""

from repro.imc.checks import Finding, Severity, lint_imc
from repro.imc.model import IMC, TAU
from repro.lint import Diagnostic
from repro.models.ftwc import build_system_imc


def codes(findings, severity=None):
    return {
        f.code
        for f in findings
        if severity is None or f.severity is severity
    }


class TestCompatFacade:
    def test_finding_is_diagnostic(self):
        assert Finding is Diagnostic

    def test_findings_carry_legacy_fields(self):
        imc = IMC(num_states=1, interactive=[(0, TAU, 0)])
        finding = lint_imc(imc)[0]
        assert finding.severity is Severity.ERROR
        assert isinstance(finding.code, str)
        assert isinstance(finding.message, str)
        assert isinstance(finding.states, tuple)


class TestLint:
    def test_clean_model(self):
        imc = IMC(num_states=2, markov=[(0, 2.0, 1), (1, 2.0, 0)])
        assert lint_imc(imc) == []

    def test_zeno_cycle_detected(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1), (1, TAU, 0)],
            markov=[(2, 1.0, 0)],
        )
        findings = lint_imc(imc)
        assert "A001" in codes(findings, Severity.ERROR)
        cycle = next(f for f in findings if f.code == "A001")
        assert set(cycle.states) == {0, 1}

    def test_tau_self_loop_is_zeno(self):
        imc = IMC(num_states=1, interactive=[(0, TAU, 0)])
        assert "A001" in codes(lint_imc(imc), Severity.ERROR)

    def test_deadlock_detected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1)])
        findings = lint_imc(imc)
        assert "A002" in codes(findings, Severity.ERROR)
        dead = next(f for f in findings if f.code == "A002")
        assert dead.states == (1,)

    def test_non_uniformity_detected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 5.0, 0)])
        findings = lint_imc(imc)
        assert "U001" in codes(findings, Severity.ERROR)
        offender = next(f for f in findings if f.code == "U001")
        assert offender.states == (0,)

    def test_unstable_states_not_flagged_non_uniform(self):
        imc = IMC(
            num_states=2,
            interactive=[(1, TAU, 0)],
            markov=[(0, 1.0, 1), (1, 99.0, 0)],
        )
        assert "U001" not in codes(lint_imc(imc))

    def test_visible_actions_warned_in_closed_view(self):
        imc = IMC(
            num_states=2,
            interactive=[(0, "grab", 1)],
            markov=[(1, 1.0, 0)],
        )
        findings = lint_imc(imc, closed=True)
        assert "S003" in codes(findings, Severity.WARNING)
        assert "S003" not in codes(lint_imc(imc, closed=False))

    def test_unreachable_states_warned(self):
        imc = IMC(num_states=3, markov=[(0, 1.0, 0), (2, 1.0, 2)])
        findings = lint_imc(imc)
        assert "S001" in codes(findings, Severity.WARNING)

    def test_errors_sorted_first(self):
        imc = IMC(
            num_states=4,
            interactive=[(0, "a", 1)],
            markov=[(1, 1.0, 0), (3, 9.0, 3)],
        )
        findings = lint_imc(imc)
        severities = [f.severity for f in findings]
        assert severities == sorted(
            severities, key=lambda s: s is not Severity.ERROR
        )

    def test_ftwc_system_is_clean(self):
        system = build_system_imc(1)
        findings = lint_imc(system.imc)
        assert codes(findings, Severity.ERROR) == set()
