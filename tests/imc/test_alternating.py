"""Tests for the three strictly-alternating transformation steps."""

import pytest
from hypothesis import given, settings

from repro.errors import TransformationError
from repro.imc.alternating import (
    make_alternating,
    make_markov_alternating,
    strictly_alternating,
    word_label,
)
from repro.imc.model import IMC, TAU, StateClass
from tests.conftest import random_closed_uniform_imcs


class TestStep1Alternating:
    def test_hybrid_states_lose_markov_transitions(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, "a", 1)],
            markov=[(0, 1.0, 2), (1, 2.0, 0)],
        )
        alternating = make_alternating(imc)
        assert alternating.state_class(0) is StateClass.INTERACTIVE
        assert alternating.markov == [(1, 2.0, 0)]

    def test_pure_states_untouched(self):
        imc = IMC(num_states=2, interactive=[(0, TAU, 1)], markov=[(1, 1.0, 0)])
        alternating = make_alternating(imc)
        assert alternating.interactive == imc.interactive
        assert alternating.markov == imc.markov


class TestStep2MarkovAlternating:
    def test_markov_to_markov_is_split(self):
        imc = IMC(num_states=2, markov=[(0, 2.0, 1), (1, 3.0, 0)])
        result, fresh = make_markov_alternating(imc)
        assert result.num_states == 4  # two fresh interleaving states
        # Every Markov transition now ends in an interactive state.
        for _src, _rate, dst in result.markov:
            assert result.state_class(dst) is StateClass.INTERACTIVE
        # Fresh states lead onwards via tau.
        for fresh_state, target in fresh.items():
            assert (fresh_state, TAU, target) in result.interactive

    def test_multiple_rates_share_one_fresh_state(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (0, 2.0, 1), (1, 1.0, 0)])
        result, fresh = make_markov_alternating(imc)
        assert len(fresh) == 2  # (0,1) and (1,0), not three

    def test_markov_self_loop_split(self):
        imc = IMC(num_states=1, markov=[(0, 1.0, 0)])
        result, _fresh = make_markov_alternating(imc)
        assert result.num_states == 2
        assert result.state_class(0) is StateClass.MARKOV

    def test_transition_into_interactive_untouched(self):
        imc = IMC(
            num_states=2, interactive=[(1, TAU, 0)], markov=[(0, 1.0, 1)]
        )
        result, fresh = make_markov_alternating(imc)
        assert fresh == {}
        assert result.markov == imc.markov

    def test_hybrid_input_rejected(self):
        imc = IMC(num_states=2, interactive=[(0, "a", 1)], markov=[(0, 1.0, 1)])
        with pytest.raises(TransformationError):
            make_markov_alternating(imc)


class TestWordLabels:
    def test_empty_word_is_tau(self):
        assert word_label(()) == TAU

    def test_visible_word_joined(self):
        assert word_label(("a", "b")) == "a.b"


class TestStep3ViaFullPipeline:
    def test_visible_actions_spell_words(self):
        # 0 --a--> 1 --b--> 2(Markov) and the initial state is interactive.
        imc = IMC(
            num_states=3,
            interactive=[(0, "a", 1), (1, "b", 2)],
            markov=[(2, 1.0, 0)],
        )
        result = strictly_alternating(imc)
        labels = {action for _s, action, _t in result.imc.interactive}
        assert labels == {"a.b"}

    def test_tau_dropped_from_words(self):
        imc = IMC(
            num_states=4,
            interactive=[(0, TAU, 1), (1, "go", 2), (2, TAU, 3)],
            markov=[(3, 1.0, 0)],
        )
        result = strictly_alternating(imc)
        labels = {action for _s, action, _t in result.imc.interactive}
        assert labels == {"go"}

    def test_pure_tau_word(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1), (1, TAU, 2)],
            markov=[(2, 1.0, 0)],
        )
        result = strictly_alternating(imc)
        labels = {action for _s, action, _t in result.imc.interactive}
        assert labels == {TAU}

    def test_unreachable_interactive_states_pruned(self):
        # State 1 is interactive but has no Markov predecessor and is not
        # initial -> it disappears.
        imc = IMC(
            num_states=4,
            interactive=[(0, TAU, 2), (1, TAU, 2)],
            markov=[(2, 1.0, 3), (3, 1.0, 2)],
            state_names=["init", "orphan", "m2", "m3"],
        )
        result = strictly_alternating(imc)
        names = set(result.imc.state_names or [])
        assert "orphan" not in names
        assert "init" in names

    def test_zeno_cycle_detected(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1), (1, TAU, 0)],
            markov=[(2, 1.0, 0)],
            initial=0,
        )
        with pytest.raises(TransformationError, match="Zeno|cycle"):
            strictly_alternating(imc)

    def test_interactive_deadlock_detected(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1)],
            markov=[(2, 1.0, 0)],  # state 1 is absorbing
            initial=0,
        )
        with pytest.raises(TransformationError, match="deadlock|absorbing"):
            strictly_alternating(imc)

    def test_absorbing_markov_target_detected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1)], initial=0)
        with pytest.raises(TransformationError, match="absorbing"):
            strictly_alternating(imc)

    def test_word_explosion_capped(self):
        # Diamond of visible actions: 2^k words.
        interactive = []
        layers = 12
        for layer in range(layers):
            interactive.append((layer, f"u{layer}", layer + 1))
            interactive.append((layer, f"d{layer}", layer + 1))
        imc = IMC(
            num_states=layers + 1,
            interactive=interactive,
            markov=[(layers, 1.0, 0)],
        )
        with pytest.raises(TransformationError, match="exceeded"):
            strictly_alternating(imc, max_words_per_state=100)

    def test_markov_initial_state_gets_synthetic_initial(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1)], interactive=[(1, TAU, 0)])
        result = strictly_alternating(imc)
        assert result.imc.name_of(result.imc.initial) == "<init>"
        # The synthetic initial must be an interactive state with a tau word.
        initial_moves = result.imc.interactive_successors(result.imc.initial)
        assert initial_moves and all(a == TAU for a, _ in initial_moves)


class TestStrictAlternationInvariants:
    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=60, deadline=None)
    def test_result_is_strictly_alternating(self, imc):
        result = strictly_alternating(imc)
        alt = result.imc
        for state in range(alt.num_states):
            cls = alt.state_class(state)
            assert cls in (StateClass.MARKOV, StateClass.INTERACTIVE)
            if cls is StateClass.MARKOV:
                # Markov targets must all be interactive.
                for _rate, dst in alt.markov_successors(state):
                    assert alt.state_class(dst) is StateClass.INTERACTIVE
            else:
                # Interactive targets must all be Markov.
                for _action, dst in alt.interactive_successors(state):
                    assert alt.state_class(dst) is StateClass.MARKOV

    @given(imc=random_closed_uniform_imcs(rate=4.0))
    @settings(max_examples=60, deadline=None)
    def test_uniformity_preserved(self, imc):
        assert imc.is_uniform(closed=True)
        result = strictly_alternating(imc)
        assert result.imc.is_uniform(closed=True)

    @given(imc=random_closed_uniform_imcs())
    @settings(max_examples=60, deadline=None)
    def test_state_maps_consistent(self, imc):
        result = strictly_alternating(imc)
        alt = result.imc
        assert len(result.original_of) == alt.num_states
        assert set(result.interactive_states).isdisjoint(result.markov_states)
        assert len(result.interactive_states) + len(result.markov_states) == alt.num_states
