"""Tests for LabeledIMC (observation threading through composition)."""

import pytest

from repro.core.reachability import timed_reachability
from repro.ctmc.phase_type import PhaseType
from repro.errors import ModelError
from repro.imc.elapse import elapse
from repro.imc.labeled import LabeledIMC, add_tuples
from repro.imc.lts import lts
from repro.imc.transform import imc_to_ctmdp


def machine(kind_slot: int, slots: int = 2) -> LabeledIMC:
    base = lts(2, [(0, "work", 1), (1, "rest", 0)], state_names=["busy", "idle"])
    observation = [0] * slots
    observation[kind_slot] = 1

    def observe(state: int):
        return tuple(observation) if state == 0 else (0,) * slots

    return LabeledIMC.from_function(base, observe)


class TestBasics:
    def test_constant(self):
        model = LabeledIMC.constant(lts(3, [(0, "a", 1), (1, "b", 2)]), "x")
        assert model.observations == ["x", "x", "x"]

    def test_length_checked(self):
        with pytest.raises(ModelError):
            LabeledIMC(imc=lts(2, []), observations=["only one"])

    def test_add_tuples(self):
        assert add_tuples((1, 0), (2, 3)) == (3, 3)
        with pytest.raises(ModelError):
            add_tuples((1,), (1, 2))

    def test_states_where(self):
        model = machine(0)
        assert model.states_where(lambda obs: obs[0] == 1) == [0]


class TestOperators:
    def test_parallel_combines_observations(self):
        product = machine(0).parallel(machine(1), sync=[])
        # Initial product state: both busy.
        assert product.observation_of(product.imc.initial) == (1, 1)
        totals = {obs for obs in product.observations}
        assert totals == {(1, 1), (1, 0), (0, 1), (0, 0)}

    def test_custom_combiner(self):
        left = LabeledIMC.constant(lts(1, []), "L")
        right = LabeledIMC.constant(lts(1, []), "R")
        product = left.parallel(right, combine=lambda a, b: a + b)
        assert product.observations == ["LR"]

    def test_hide_and_relabel_keep_observations(self):
        model = machine(0)
        assert model.hide(["work"]).observations == model.observations
        assert model.relabel({"work": "produce"}).observations == model.observations

    def test_relabel_observations(self):
        model = machine(0).relabel_observations(lambda obs: obs[0] > 0)
        assert model.observations == [True, False]

    def test_minimize_respects_observations(self):
        # Two parallel machines with symmetric structure: states with
        # different observation sums must not merge.
        clock = LabeledIMC.constant(
            elapse(PhaseType.exponential(1.0), fire="work", reset="rest"), (0, 0)
        )
        system = machine(0).parallel(machine(1), sync=[])
        system = system.parallel(clock, sync=["work", "rest"]).hide_all_but()
        reduced = system.minimize()
        assert reduced.imc.num_states <= system.imc.num_states
        observed = {obs for obs in reduced.observations}
        assert (1, 1) in observed


class TestEndToEnd:
    def test_observation_driven_goal_after_minimisation(self):
        """Build, minimise, transform -- the goal predicate evaluated on
        observations gives the same answer before and after quotient."""
        clock = LabeledIMC.constant(
            elapse(PhaseType.exponential(2.0), fire="work", reset="rest"), (0, 0)
        )
        rest_clock = LabeledIMC.constant(
            elapse(PhaseType.exponential(3.0), fire="rest", reset="work", started=False),
            (0, 0),
        )
        system = machine(0).parallel(machine(1), sync=[])
        system = system.parallel(clock, sync=["work", "rest"])
        system = system.parallel(rest_clock, sync=["work", "rest"])
        closed = system.hide_all_but()
        reduced = closed.minimize()

        def analyse(model: LabeledIMC) -> float:
            result = imc_to_ctmdp(model.imc, require_uniform=True)
            idle = set(model.states_where(lambda obs: sum(obs) == 0))
            mask = result.goal_mask_from_predicate(lambda s: s in idle, via="markov")
            return timed_reachability(result.ctmdp, mask, 1.0, epsilon=1e-9).value(
                result.ctmdp.initial
            )

        assert analyse(reduced) == pytest.approx(analyse(closed), abs=1e-8)
