"""Tests for word labels on partially closed models.

The transformation of Section 4.1 labels compressed interactive
sequences with *words* over ``Act+ \\ {tau} + {tau}``.  Fully closed
models only ever produce the word ``tau``; these tests exercise the
general case where visible actions remain (the paper's open-alphabet
intermediate stages).
"""

import pytest

from repro.core.reachability import timed_reachability
from repro.imc.model import IMC, TAU
from repro.imc.transform import imc_to_ctmdp


class TestWordLabels:
    def test_mixed_word_drops_taus(self):
        # Markov -> (tau, a, tau, b) -> Markov: word "a.b".
        imc = IMC(
            num_states=6,
            interactive=[
                (1, TAU, 2),
                (2, "a", 3),
                (3, TAU, 4),
                (4, "b", 5),
            ],
            markov=[(0, 1.0, 1), (5, 1.0, 1)],
            initial=0,
        )
        result = imc_to_ctmdp(imc)
        labels = set(result.ctmdp.labels) - {TAU}
        assert labels == {"a.b"}

    def test_branching_words_become_choices(self):
        # From the decision state, two visible continuations: two
        # distinctly labelled CTMDP transitions.
        imc = IMC(
            num_states=5,
            interactive=[(1, "left", 2), (1, "right", 3)],
            markov=[(0, 1.0, 1), (2, 2.0, 1), (3, 2.0, 1), (0, 1.0, 4), (4, 1.0, 1)],
            initial=0,
        )
        result = imc_to_ctmdp(imc)
        state_of_1 = list(result.state_original).index(1)
        actions = {t.action for t in result.ctmdp.transitions_of(state_of_1)}
        assert actions == {"left", "right"}

    def test_same_word_different_targets_kept_separately(self):
        """Two interactive paths spelling the same word into different
        Markov states yield two transitions with the same label -- the
        paper's 'mild variation' of CTMDPs."""
        imc = IMC(
            num_states=5,
            interactive=[(1, "go", 2), (1, "go", 3)],
            markov=[(0, 1.0, 1), (2, 1.0, 1), (3, 5.0, 1), (0, 1.0, 4), (4, 1.0, 1)],
            initial=0,
        )
        result = imc_to_ctmdp(imc)
        state_of_1 = list(result.state_original).index(1)
        go_transitions = [
            t for t in result.ctmdp.transitions_of(state_of_1) if t.action == "go"
        ]
        assert len(go_transitions) == 2
        totals = sorted(t.total_rate() for t in go_transitions)
        assert totals == [pytest.approx(1.0), pytest.approx(5.0)]

    def test_scheduler_exploits_same_label_choices(self):
        """The duplicate-label transitions are genuine alternatives: the
        analysis must range over transitions, not actions."""
        imc = IMC(
            num_states=5,
            interactive=[(1, "go", 2), (1, "go", 3)],
            markov=[
                (0, 2.0, 1),
                (2, 2.0, 4),  # fast branch into the goal
                (3, 0.5, 4),
                (3, 1.5, 1),  # slow branch mostly recycles
                (4, 2.0, 1),
            ],
            initial=0,
        )
        # Uniformity: state 3's exits sum to 2.0 like the others.
        result = imc_to_ctmdp(imc, require_uniform=True)
        goal = result.goal_mask_from_predicate(lambda s: s == 4, via="markov")
        t = 1.0
        sup = timed_reachability(result.ctmdp, goal, t, epsilon=1e-9).value(
            result.ctmdp.initial
        )
        inf = timed_reachability(
            result.ctmdp, goal, t, epsilon=1e-9, objective="min"
        ).value(result.ctmdp.initial)
        assert sup > inf + 1e-6
