"""Tests for the elapse operator (phase-type time constraints)."""

import math

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.ctmc.phase_type import PhaseType
from repro.errors import CompositionError
from repro.imc.composition import hide_all_but, parallel
from repro.imc.elapse import elapse
from repro.imc.lts import lts
from repro.imc.model import TAU
from repro.imc.transform import imc_to_ctmdp


class TestStructure:
    def test_uniform_by_construction(self):
        constraint = elapse(PhaseType.erlang(3, 2.0), fire="f", reset="r")
        assert constraint.is_uniform()
        assert constraint.uniform_rate() == pytest.approx(2.0)

    def test_fire_only_enabled_in_expired_state(self):
        constraint = elapse(PhaseType.exponential(1.0), fire="f", reset="r")
        fire_sources = {src for src, action, _ in constraint.interactive if action == "f"}
        expired = constraint.state_names.index("expired")
        assert fire_sources == {expired}

    def test_reset_enabled_everywhere_but_armed(self):
        constraint = elapse(PhaseType.erlang(2, 1.0), fire="f", reset="r")
        reset_sources = {src for src, action, _ in constraint.interactive if action == "r"}
        armed = constraint.state_names.index("armed")
        assert reset_sources == set(range(constraint.num_states)) - {armed}

    def test_reset_leads_to_armed_state(self):
        constraint = elapse(PhaseType.exponential(1.0), fire="f", reset="r")
        armed = constraint.state_names.index("armed")
        for _src, action, dst in constraint.interactive:
            if action == "r":
                assert dst == armed

    def test_started_flag_controls_initial_state(self):
        armed = elapse(PhaseType.exponential(1.0), fire="f", reset="r", started=True)
        waiting = elapse(PhaseType.exponential(1.0), fire="f", reset="r", started=False)
        assert armed.state_names[armed.initial] == "armed"
        assert waiting.state_names[waiting.initial] == "expired"

    def test_explicit_uniform_rate(self):
        constraint = elapse(
            PhaseType.exponential(1.0), fire="f", reset="r", uniform_rate=5.0
        )
        assert constraint.uniform_rate() == pytest.approx(5.0)

    def test_tau_actions_rejected(self):
        ph = PhaseType.exponential(1.0)
        with pytest.raises(CompositionError):
            elapse(ph, fire=TAU, reset="r")
        with pytest.raises(CompositionError):
            elapse(ph, fire="f", reset=TAU)

    def test_equal_actions_rejected(self):
        with pytest.raises(CompositionError):
            elapse(PhaseType.exponential(1.0), fire="x", reset="x")


class TestBehaviour:
    @pytest.mark.parametrize(
        "ph, cdf",
        [
            (PhaseType.exponential(2.0), lambda t: 1.0 - math.exp(-2.0 * t)),
            (
                PhaseType.erlang(2, 2.0),
                lambda t: 1.0 - math.exp(-2.0 * t) * (1.0 + 2.0 * t),
            ),
        ],
    )
    def test_constrained_event_has_phase_type_delay(self, ph, cdf):
        """Composing ``El(ph, f, r)`` with an LTS that wants to do ``f``
        delays ``f`` exactly by ``ph``: the probability of having seen
        ``f`` by time ``t`` equals the cdf."""
        behaviour = lts(2, [(0, "f", 1)], state_names=["waiting", "done"])
        constraint = elapse(ph, fire="f", reset="r")
        system = hide_all_but(parallel(behaviour, constraint, sync=["f", "r"]))
        result = imc_to_ctmdp(system)
        behaviour_done = result.goal_mask_from_predicate(
            lambda s: system.name_of(s).split("|")[0] == "done", via="markov"
        )
        for t in (0.2, 0.5, 1.5):
            value = timed_reachability(result.ctmdp, behaviour_done, t, epsilon=1e-10)
            assert value.value(result.ctmdp.initial) == pytest.approx(cdf(t), abs=1e-8)

    def test_reset_rearms_the_clock(self):
        """fire, reset, fire again: the second fire needs a fresh delay,
        so seeing both fires takes an Erlang(2) distributed time."""
        behaviour = lts(
            4,
            [(0, "f", 1), (1, "r", 2), (2, "f", 3)],
            state_names=["w1", "mid", "w2", "end"],
        )
        constraint = elapse(PhaseType.exponential(1.0), fire="f", reset="r")
        system = hide_all_but(parallel(behaviour, constraint, sync=["f", "r"]))
        result = imc_to_ctmdp(system)
        finished = result.goal_mask_from_predicate(
            lambda s: system.name_of(s).split("|")[0] == "end", via="markov"
        )
        t = 2.0
        expected = 1.0 - math.exp(-t) * (1.0 + t)  # Erlang(2, 1) cdf
        value = timed_reachability(result.ctmdp, finished, t, epsilon=1e-10)
        assert value.value(result.ctmdp.initial) == pytest.approx(expected, abs=1e-8)
