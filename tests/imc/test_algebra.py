"""Tests for the process-algebra front-end."""

import pytest

from repro.errors import ModelError
from repro.imc.algebra import ProcessSpec, choice, prefix, ref, stop
from repro.imc.composition import parallel
from repro.imc.model import IMC


class TestTerms:
    def test_prefix_requires_action(self):
        with pytest.raises(ModelError):
            prefix("", stop())

    def test_choice_flattens(self):
        term = choice(prefix("a", stop()), choice(prefix("b", stop()), prefix("c", stop())))
        assert len(term.alternatives) == 3

    def test_choice_of_one_is_identity(self):
        inner = prefix("a", stop())
        assert choice(inner) is inner

    def test_empty_choice_is_stop(self):
        from repro.imc.algebra import Stop

        assert isinstance(choice(), Stop)


class TestCompile:
    def test_cycle(self):
        spec = ProcessSpec()
        spec.define(
            "Component",
            prefix("fail", prefix("g", prefix("rep", prefix("r", ref("Component"))))),
        )
        model = spec.to_lts("Component")
        assert model.num_states == 4
        actions = [a for _s, a, _t in model.interactive]
        assert sorted(actions) == ["fail", "g", "r", "rep"]
        # It is a cycle back to the initial state.
        closing = [t for _s, a, t in model.interactive if a == "r"]
        assert closing == [model.initial]

    def test_choice_creates_branching(self):
        spec = ProcessSpec()
        spec.define(
            "RU",
            choice(
                prefix("g_ws", prefix("r_ws", ref("RU"))),
                prefix("g_sw", prefix("r_sw", ref("RU"))),
            ),
        )
        model = spec.to_lts("RU")
        assert model.num_states == 3
        initial_moves = {a for a, _t in model.interactive_successors(model.initial)}
        assert initial_moves == {"g_ws", "g_sw"}

    def test_stop_is_deadlock(self):
        spec = ProcessSpec().define("Once", prefix("a", stop()))
        model = spec.to_lts("Once")
        assert model.num_states == 2
        assert model.interactive_successors(1) == []

    def test_mutually_recursive_equations(self):
        spec = ProcessSpec()
        spec.define("Even", prefix("tick", ref("Odd")))
        spec.define("Odd", prefix("tock", ref("Even")))
        model = spec.to_lts("Even")
        assert model.num_states == 2
        assert model.state_names == ["Even", "Odd"]

    def test_unguarded_choice_over_refs(self):
        spec = ProcessSpec()
        spec.define("A", prefix("a", ref("AB")))
        spec.define("B", prefix("b", ref("AB")))
        spec.define("AB", choice(ref("A"), ref("B")))
        model = spec.to_lts("AB")
        assert {a for _s, a, _t in model.interactive} == {"a", "b"}

    def test_unproductive_recursion_rejected(self):
        spec = ProcessSpec().define("X", ref("X"))
        with pytest.raises(ModelError, match="unguarded"):
            spec.to_lts("X")

    def test_undefined_reference_rejected(self):
        spec = ProcessSpec().define("A", prefix("a", ref("Ghost")))
        with pytest.raises(ModelError, match="undefined"):
            spec.to_lts("A")
        with pytest.raises(ModelError, match="undefined"):
            ProcessSpec().to_lts("Nothing")


class TestIntegration:
    def test_equivalent_to_cycle_lts(self):
        from repro.bisim.compare import are_strongly_bisimilar
        from repro.imc.lts import cycle_lts

        spec = ProcessSpec()
        spec.define("C", prefix("a", prefix("b", prefix("c", ref("C")))))
        algebraic = spec.to_lts("C")
        direct = cycle_lts(["a", "b", "c"])
        assert are_strongly_bisimilar(algebraic, direct)

    def test_composable(self):
        spec = ProcessSpec()
        spec.define("P", prefix("sync", ref("P")))
        spec.define("Q", prefix("sync", prefix("local", ref("Q"))))
        product = parallel(spec.to_lts("P"), spec.to_lts("Q"), sync=["sync"])
        assert isinstance(product, IMC)
        assert product.num_states == 2
