"""Property-based tests for the elapse operator over random phase types.

The defining property of ``El(Ph, f, r)``: in any composition where
``f`` is only blocked by the constraint, the time until ``f`` is
distributed exactly as ``Ph``.  We verify this through the complete
pipeline (compose, close, transform, analyse) against the phase-type's
own cdf, for randomly drawn Erlang, hypoexponential and Coxian
distributions.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.reachability import timed_reachability
from repro.ctmc.phase_type import PhaseType
from repro.imc.composition import hide_all_but, parallel
from repro.imc.elapse import elapse
from repro.imc.lts import lts
from repro.imc.transform import imc_to_ctmdp


@st.composite
def random_phase_types(draw) -> PhaseType:
    family = draw(st.sampled_from(["erlang", "hypo", "coxian"]))
    if family == "erlang":
        return PhaseType.erlang(draw(st.integers(1, 4)), draw(st.floats(0.5, 5.0)))
    if family == "hypo":
        stages = draw(
            st.lists(st.floats(0.5, 5.0), min_size=1, max_size=3)
        )
        return PhaseType.hypoexponential(stages)
    rates = draw(st.lists(st.floats(0.5, 5.0), min_size=2, max_size=3))
    completions = [draw(st.floats(0.1, 0.9)) for _ in rates[:-1]] + [1.0]
    return PhaseType.coxian(rates, completions)


class TestElapseDistributionProperty:
    @given(ph=random_phase_types(), t=st.floats(0.2, 3.0))
    @settings(max_examples=25, deadline=None)
    def test_delay_distribution_is_the_phase_type(self, ph, t):
        behaviour = lts(2, [(0, "f", 1)], state_names=["waiting", "done"])
        constraint = elapse(ph, fire="f", reset="r")
        system = hide_all_but(parallel(behaviour, constraint, sync=["f", "r"]))
        result = imc_to_ctmdp(system, require_uniform=True)
        done = result.goal_mask_from_predicate(
            lambda s: system.name_of(s).split("|")[0] == "done", via="markov"
        )
        value = timed_reachability(result.ctmdp, done, t, epsilon=1e-10).value(
            result.ctmdp.initial
        )
        assert value == pytest.approx(ph.cdf(t), abs=1e-7)

    @given(ph=random_phase_types())
    @settings(max_examples=25, deadline=None)
    def test_uniform_at_max_exit_rate(self, ph):
        constraint = elapse(ph, fire="f", reset="r")
        assert constraint.is_uniform()
        uniformized = ph.uniformized()
        assert constraint.uniform_rate() == pytest.approx(
            uniformized.uniform_rate()
        )
