"""Tests for the LTS helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ModelError
from repro.imc.lts import cycle_lts, lts


class TestLts:
    def test_builds_markov_free_imc(self):
        model = lts(3, [(0, "a", 1), (1, "b", 2)])
        assert model.is_lts()
        assert model.num_markov_transitions == 0

    def test_uniform_with_rate_zero(self):
        model = lts(2, [(0, "a", 1)])
        assert model.is_uniform()
        assert model.uniform_rate() == 0.0

    def test_names_threaded(self):
        model = lts(2, [(0, "go", 1)], state_names=["here", "there"])
        assert model.name_of(1) == "there"

    def test_invalid_transitions_rejected(self):
        with pytest.raises(ModelError):
            lts(1, [(0, "a", 5)])


class TestCycleLts:
    def test_ftwc_component_shape(self):
        model = cycle_lts(["fail", "grab", "repair", "release"])
        assert model.num_states == 4
        # Last action closes the cycle.
        assert (3, "release", 0) in model.interactive

    def test_single_action_self_loop(self):
        model = cycle_lts(["tick"])
        assert model.interactive == [(0, "tick", 0)]

    def test_names_checked(self):
        with pytest.raises(ModelError):
            cycle_lts(["a", "b"], state_names=["only-one"])

    def test_empty_rejected(self):
        with pytest.raises(ModelError):
            cycle_lts([])

    @given(length=st.integers(2, 8))
    @settings(max_examples=20, deadline=None)
    def test_cycle_visits_every_state(self, length):
        actions = [f"a{k}" for k in range(length)]
        model = cycle_lts(actions)
        # Following the unique transitions returns to the start after
        # exactly `length` steps.
        state = model.initial
        for _ in range(length):
            moves = model.interactive_successors(state)
            assert len(moves) == 1
            state = moves[0][1]
        assert state == model.initial
