"""Tests for hiding, relabelling and parallel composition -- including the
executable versions of Lemma 1 and Lemma 2 (uniformity preservation)."""

import pytest
from hypothesis import given, settings

from repro.errors import CompositionError
from repro.imc.composition import (
    hide,
    hide_all_but,
    interleave,
    parallel,
    parallel_many,
    parallel_with_map,
    relabel,
)
from repro.imc.lts import lts
from repro.imc.model import IMC, TAU
from tests.conftest import random_uniform_imcs


class TestHide:
    def test_hidden_action_becomes_tau(self):
        imc = IMC(num_states=2, interactive=[(0, "a", 1), (0, "b", 1)])
        hidden = hide(imc, ["a"])
        assert (0, TAU, 1) in hidden.interactive
        assert (0, "b", 1) in hidden.interactive

    def test_markov_untouched(self):
        imc = IMC(num_states=2, interactive=[(0, "a", 1)], markov=[(1, 2.0, 0)])
        assert hide(imc, ["a"]).markov == imc.markov

    def test_hide_tau_rejected(self):
        imc = IMC(num_states=1)
        with pytest.raises(CompositionError):
            hide(imc, [TAU])

    def test_hide_all_but(self):
        imc = IMC(num_states=2, interactive=[(0, "a", 1), (0, "b", 1), (0, "c", 1)])
        closed = hide_all_but(imc, keep=["b"])
        assert closed.visible_actions() == {"b"}

    @given(imc=random_uniform_imcs())
    @settings(max_examples=60, deadline=None)
    def test_lemma_1_hiding_preserves_uniformity(self, imc):
        assert imc.is_uniform()
        for action in ("a", "b"):
            assert hide(imc, [action]).is_uniform()
        assert hide_all_but(imc).is_uniform()


class TestRelabel:
    def test_relabelling(self):
        imc = IMC(num_states=2, interactive=[(0, "g", 1), (0, "r", 1)])
        renamed = relabel(imc, {"g": "g_wsL", "r": "r_wsL"})
        assert (0, "g_wsL", 1) in renamed.interactive
        assert (0, "r_wsL", 1) in renamed.interactive

    def test_unmapped_actions_unchanged(self):
        imc = IMC(num_states=2, interactive=[(0, "keep", 1)])
        assert relabel(imc, {"other": "x"}).interactive == imc.interactive

    def test_relabel_tau_rejected(self):
        imc = IMC(num_states=1)
        with pytest.raises(CompositionError):
            relabel(imc, {TAU: "x"})

    def test_relabel_onto_tau_rejected(self):
        imc = IMC(num_states=1)
        with pytest.raises(CompositionError):
            relabel(imc, {"a": TAU})


class TestParallelSOS:
    def test_independent_actions_interleave(self):
        left = lts(2, [(0, "a", 1)])
        right = lts(2, [(0, "b", 1)])
        product = parallel(left, right, sync=[])
        assert product.num_states == 4
        actions = sorted(a for _, a, _ in product.interactive)
        assert actions == ["a", "a", "b", "b"]

    def test_synchronised_action_moves_both(self):
        left = lts(2, [(0, "s", 1)])
        right = lts(2, [(0, "s", 1)])
        product = parallel(left, right, sync=["s"])
        # Only (0,0) -s-> (1,1): two states reachable.
        assert product.num_states == 2
        assert len(product.interactive) == 1

    def test_synchronisation_blocks_when_partner_not_ready(self):
        left = lts(2, [(0, "s", 1)])
        right = lts(2, [(1, "s", 0)])  # right starts where s is disabled
        product = parallel(left, right, sync=["s"])
        assert product.interactive == []
        assert product.num_states == 1

    def test_markov_transitions_interleave(self):
        left = IMC(num_states=2, markov=[(0, 2.0, 1)])
        right = IMC(num_states=2, markov=[(0, 3.0, 1)])
        product = parallel(left, right)
        # From (0,0): rate 2 to (1,0) and rate 3 to (0,1).
        assert product.exit_rate(0) == pytest.approx(5.0)

    def test_only_reachable_product_states_built(self):
        left = lts(3, [(0, "a", 1)])  # state 2 unreachable
        right = lts(2, [(0, "b", 1)])
        product = parallel(left, right)
        assert product.num_states == 4  # not 6

    def test_tau_never_synchronises(self):
        left = lts(2, [(0, TAU, 1)])
        right = lts(2, [(0, TAU, 1)])
        with pytest.raises(CompositionError):
            parallel(left, right, sync=[TAU])

    def test_with_map_returns_pairs(self):
        left = lts(2, [(0, "a", 1)])
        right = lts(2, [(0, "b", 1)])
        product, pairs = parallel_with_map(left, right)
        assert pairs[0] == (0, 0)
        assert len(pairs) == product.num_states
        assert set(pairs) == {(0, 0), (1, 0), (0, 1), (1, 1)}

    def test_state_names_combined(self):
        left = lts(1, [], state_names=["L"])
        right = lts(1, [], state_names=["R"])
        assert parallel(left, right).state_names == ["L|R"]

    def test_parallel_many_folds(self):
        a = lts(2, [(0, "x", 1)])
        product = parallel_many([a, a, a], sync=["x"])
        # Three-way synchronisation: single x edge.
        assert len(product.interactive) == 1
        assert product.num_states == 2

    def test_parallel_many_empty_rejected(self):
        with pytest.raises(CompositionError):
            parallel_many([])


class TestLemma2:
    @given(left=random_uniform_imcs(rate=2.0), right=random_uniform_imcs(rate=3.0))
    @settings(max_examples=40, deadline=None)
    def test_uniform_rates_add_up(self, left, right):
        product = interleave(left, right)
        assert product.is_uniform()
        # If any stable product state is reachable, the rate is the sum.
        stable = [
            s for s in product.reachable_states() if product.is_stable(s)
        ]
        if stable:
            assert product.uniform_rate() == pytest.approx(5.0)

    @given(left=random_uniform_imcs(rate=2.0), right=random_uniform_imcs(rate=3.0))
    @settings(max_examples=40, deadline=None)
    def test_uniformity_preserved_under_sync(self, left, right):
        product = parallel(left, right, sync=["a"])
        assert product.is_uniform()


class TestAlgebraicLaws:
    """Parallel composition is commutative and associative up to strong
    bisimilarity -- the laws compositional reasoning rests on."""

    @given(left=random_uniform_imcs(rate=2.0), right=random_uniform_imcs(rate=3.0))
    @settings(max_examples=25, deadline=None)
    def test_commutative_up_to_bisimilarity(self, left, right):
        from repro.bisim.compare import are_strongly_bisimilar

        assert are_strongly_bisimilar(
            parallel(left, right, sync=["a"]), parallel(right, left, sync=["a"])
        )

    @given(
        first=random_uniform_imcs(rate=1.0, max_states=4),
        second=random_uniform_imcs(rate=2.0, max_states=4),
        third=random_uniform_imcs(rate=3.0, max_states=4),
    )
    @settings(max_examples=15, deadline=None)
    def test_associative_up_to_bisimilarity(self, first, second, third):
        from repro.bisim.compare import are_strongly_bisimilar

        sync = ["a"]
        left_grouping = parallel(parallel(first, second, sync), third, sync)
        right_grouping = parallel(first, parallel(second, third, sync), sync)
        assert are_strongly_bisimilar(left_grouping, right_grouping)

    @given(imc=random_uniform_imcs(rate=2.0))
    @settings(max_examples=25, deadline=None)
    def test_hide_is_idempotent(self, imc):
        once = hide(imc, ["a"])
        twice = hide(once, ["a"])
        assert once.interactive == twice.interactive
        assert once.markov == twice.markov
