"""Tests for the IMC model class and builder."""

import pytest
from hypothesis import given, settings

from repro.errors import ModelError
from repro.imc.model import IMC, TAU, IMCBuilder, StateClass
from tests.conftest import random_imcs


@pytest.fixture
def mixed() -> IMC:
    """0 hybrid, 1 interactive, 2 Markov, 3 absorbing."""
    return IMC(
        num_states=4,
        interactive=[(0, "a", 1), (1, TAU, 2)],
        markov=[(0, 1.0, 2), (2, 3.0, 3)],
        initial=0,
    )


class TestClassification:
    def test_state_classes(self, mixed):
        assert mixed.state_class(0) is StateClass.HYBRID
        assert mixed.state_class(1) is StateClass.INTERACTIVE
        assert mixed.state_class(2) is StateClass.MARKOV
        assert mixed.state_class(3) is StateClass.ABSORBING

    def test_partition_covers_all_states(self, mixed):
        partition = mixed.partition()
        total = sum(len(states) for states in partition.values())
        assert total == mixed.num_states
        assert partition[StateClass.HYBRID] == [0]
        assert partition[StateClass.ABSORBING] == [3]

    def test_stability(self, mixed):
        assert mixed.is_stable(0)  # only a visible action
        assert not mixed.is_stable(1)  # tau
        assert mixed.is_stable(2)
        assert mixed.is_stable(3)

    def test_special_cases(self):
        lts_like = IMC(num_states=2, interactive=[(0, "a", 1)], markov=[])
        ctmc_like = IMC(num_states=2, interactive=[], markov=[(0, 1.0, 1)])
        assert lts_like.is_lts() and not lts_like.is_ctmc()
        assert ctmc_like.is_ctmc() and not ctmc_like.is_lts()


class TestRates:
    def test_exit_rate(self, mixed):
        assert mixed.exit_rate(0) == pytest.approx(1.0)
        assert mixed.exit_rate(2) == pytest.approx(3.0)
        assert mixed.exit_rate(1) == 0.0

    def test_cumulative_rate_with_multiplicities(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (0, 2.0, 1)])
        assert imc.rate(0, 1) == pytest.approx(3.0)

    def test_rate_into_set(self, mixed):
        assert mixed.rate_into(0, [1, 2]) == pytest.approx(1.0)
        assert mixed.rate_into(0, [1]) == 0.0


class TestUniformity:
    def test_lts_is_uniform_rate_zero(self):
        imc = IMC(num_states=2, interactive=[(0, "a", 1), (1, "b", 0)])
        assert imc.is_uniform()
        assert imc.uniform_rate() == 0.0

    def test_uniform_markov_chain(self):
        imc = IMC(num_states=2, markov=[(0, 2.0, 1), (1, 2.0, 0)])
        assert imc.is_uniform()
        assert imc.uniform_rate() == pytest.approx(2.0)

    def test_unstable_states_unconstrained(self):
        # State 1 has tau, so its deviating rate does not break uniformity.
        imc = IMC(
            num_states=3,
            interactive=[(1, TAU, 0)],
            markov=[(0, 2.0, 1), (1, 99.0, 2), (2, 2.0, 0)],
        )
        assert imc.is_uniform()
        assert imc.uniform_rate() == pytest.approx(2.0)

    def test_visible_only_stable_state_breaks_uniformity(self):
        # A stable state with only visible actions has exit rate 0 != 2.
        imc = IMC(
            num_states=2,
            interactive=[(1, "a", 0)],
            markov=[(0, 2.0, 1)],
        )
        assert not imc.is_uniform()

    def test_unreachable_states_ignored(self):
        imc = IMC(num_states=3, markov=[(0, 2.0, 0), (2, 77.0, 0)])
        assert imc.is_uniform()

    def test_non_uniform_detected(self):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1), (1, 2.0, 0)])
        assert not imc.is_uniform()
        with pytest.raises(ModelError):
            imc.uniform_rate()


class TestReachability:
    def test_open_view_maximal_progress(self):
        # State 0 has tau and a Markov transition; under the open view
        # tau preempts, so state 2 is unreachable.
        imc = IMC(
            num_states=3,
            interactive=[(0, TAU, 1)],
            markov=[(0, 1.0, 2)],
        )
        assert set(imc.reachable_states(closed=False)) == {0, 1}

    def test_open_view_visible_does_not_preempt(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, "a", 1)],
            markov=[(0, 1.0, 2)],
        )
        assert set(imc.reachable_states(closed=False)) == {0, 1, 2}

    def test_closed_view_urgency(self):
        imc = IMC(
            num_states=3,
            interactive=[(0, "a", 1)],
            markov=[(0, 1.0, 2)],
        )
        assert set(imc.reachable_states(closed=True)) == {0, 1}

    def test_restricted_to_reachable(self):
        imc = IMC(
            num_states=4,
            interactive=[(0, "a", 1), (3, "b", 0)],
            markov=[(1, 1.0, 0)],
            state_names=["s0", "s1", "s2", "s3"],
        )
        pruned = imc.restricted_to_reachable()
        assert pruned.num_states == 2
        assert pruned.state_names == ["s0", "s1"]
        assert pruned.initial == 0


class TestValidation:
    def test_empty_state_space_rejected(self):
        with pytest.raises(ModelError):
            IMC(num_states=0)

    def test_bad_initial_rejected(self):
        with pytest.raises(ModelError):
            IMC(num_states=1, initial=1)

    def test_transition_out_of_range_rejected(self):
        with pytest.raises(ModelError):
            IMC(num_states=1, interactive=[(0, "a", 1)])

    def test_nonpositive_rate_rejected(self):
        with pytest.raises(ModelError):
            IMC(num_states=2, markov=[(0, 0.0, 1)])

    def test_empty_action_rejected(self):
        with pytest.raises(ModelError):
            IMC(num_states=2, interactive=[(0, "", 1)])

    def test_state_names_length_checked(self):
        with pytest.raises(ModelError):
            IMC(num_states=2, state_names=["x"])


class TestBuilder:
    def test_round_trip(self):
        builder = IMCBuilder()
        up = builder.state("up")
        down = builder.state("down")
        builder.interactive(up, "fail", down)
        builder.markov(down, 2.0, up)
        builder.tau(up, up)
        imc = builder.build(initial=up)
        assert imc.num_states == 2
        assert imc.state_names == ["up", "down"]
        assert (up, "fail", down) in imc.interactive
        assert (up, TAU, up) in imc.interactive
        assert imc.markov == [(down, 2.0, up)]

    def test_state_lookup_by_name(self):
        builder = IMCBuilder()
        a = builder.state("a")
        assert builder.state("a") == a

    def test_anonymous_states_named(self):
        builder = IMCBuilder()
        s = builder.state()
        assert builder.build().state_names[s] == f"s{s}"


class TestRandomModels:
    @given(imc=random_imcs())
    @settings(max_examples=50, deadline=None)
    def test_partition_is_disjoint_cover(self, imc):
        partition = imc.partition()
        seen = [s for states in partition.values() for s in states]
        assert sorted(seen) == list(range(imc.num_states))

    @given(imc=random_imcs())
    @settings(max_examples=50, deadline=None)
    def test_reachable_contains_initial(self, imc):
        for closed in (False, True):
            reachable = imc.reachable_states(closed=closed)
            assert reachable[0] == imc.initial
            assert len(set(reachable)) == len(reachable)
