"""Tests for the direct closed-IMC simulator, and the independent
end-to-end validation of the transformation it enables."""

import math

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.errors import ModelError
from repro.imc.model import IMC, TAU, IMCBuilder
from repro.imc.transform import imc_to_ctmdp
from repro.sim.imc_sim import (
    first_resolver,
    random_resolver,
    simulate_imc_reachability,
)


class TestBasics:
    def test_exponential_delay(self, rng):
        imc = IMC(num_states=2, markov=[(0, 2.0, 1), (1, 2.0, 1)])
        t = 0.6
        estimate = simulate_imc_reachability(imc, {1}, t, runs=8000, rng=rng)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= 1.0 - math.exp(-2.0 * t) <= high

    def test_zero_time_interactive_visits_count(self, rng):
        # 0 -(rate)-> 1 -tau-> 2 -tau-> 0: state 2 is only ever visited
        # for zero time, but visits count.
        imc = IMC(
            num_states=3,
            interactive=[(1, TAU, 2), (2, TAU, 0)],
            markov=[(0, 1.0, 1)],
        )
        t = 1.0
        estimate = simulate_imc_reachability(imc, {2}, t, runs=6000, rng=rng)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= 1.0 - math.exp(-t) <= high

    def test_absorbing_dead_end(self, rng):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1)])
        estimate = simulate_imc_reachability(imc, {0}, 1.0, runs=10, rng=rng)
        assert estimate.probability == 1.0  # start state is goal
        estimate = simulate_imc_reachability(
            IMC(num_states=3, markov=[(0, 1.0, 1)]), {2}, 10.0, runs=50, rng=rng
        )
        assert estimate.probability == 0.0

    def test_zeno_guard(self, rng):
        imc = IMC(num_states=2, interactive=[(0, TAU, 1), (1, TAU, 0)])
        with pytest.raises(ModelError, match="Zeno"):
            simulate_imc_reachability(imc, {}, 1.0, runs=1, rng=rng, max_interactive_steps=10)

    def test_invalid_runs(self, rng):
        imc = IMC(num_states=2, markov=[(0, 1.0, 1)])
        with pytest.raises(ModelError):
            simulate_imc_reachability(imc, {1}, 1.0, runs=0, rng=rng)

    def test_bad_resolver_detected(self, rng):
        imc = IMC(
            num_states=2,
            interactive=[(0, TAU, 1)],
            markov=[(1, 1.0, 0)],
        )
        with pytest.raises(ModelError, match="resolver"):
            simulate_imc_reachability(
                imc, {}, 1.0, resolver=lambda m, s, h: 7, runs=1, rng=rng
            )


class TestTheoremOneEndToEnd:
    """Independent validation: the IMC's native semantics (simulated)
    agrees with the transformed CTMDP's analytic bounds."""

    def _nondeterministic_model(self):
        builder = IMCBuilder()
        start = builder.state("start")
        choice = builder.state("choice")
        fast = builder.state("fast")
        slow = builder.state("slow")
        goal = builder.state("goal")
        builder.markov(start, 4.0, choice)
        builder.tau(choice, fast)
        builder.tau(choice, slow)
        builder.markov(fast, 4.0, goal)
        builder.markov(slow, 1.0, goal)
        builder.markov(slow, 3.0, start)
        builder.tau(goal, start)
        return builder.build(initial=start), goal

    def test_random_resolution_within_bounds(self, rng):
        imc, goal_state = self._nondeterministic_model()
        t = 0.8
        result = imc_to_ctmdp(imc, require_uniform=True)
        mask = result.goal_mask_from_predicate(
            lambda s: s == goal_state, via="interactive"
        )
        sup = timed_reachability(result.ctmdp, mask, t, epsilon=1e-9).value(
            result.ctmdp.initial
        )
        inf = timed_reachability(
            result.ctmdp, mask, t, epsilon=1e-9, objective="min"
        ).value(result.ctmdp.initial)
        estimate = simulate_imc_reachability(
            imc, {goal_state}, t, resolver=random_resolver(rng), runs=6000, rng=rng
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= sup + 1e-9
        assert high >= inf - 1e-9

    def test_deterministic_resolution_within_bounds(self, rng):
        imc, goal_state = self._nondeterministic_model()
        t = 0.8
        result = imc_to_ctmdp(imc, require_uniform=True)
        mask = result.goal_mask_from_predicate(
            lambda s: s == goal_state, via="interactive"
        )
        sup = timed_reachability(result.ctmdp, mask, t, epsilon=1e-9).value(
            result.ctmdp.initial
        )
        inf = timed_reachability(
            result.ctmdp, mask, t, epsilon=1e-9, objective="min"
        ).value(result.ctmdp.initial)
        estimate = simulate_imc_reachability(
            imc, {goal_state}, t, resolver=first_resolver(), runs=6000, rng=rng
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= sup + 1e-9
        assert high >= inf - 1e-9

    def test_deterministic_ctmc_like_model_matches_exactly(self, rng):
        # Without nondeterminism: the analytic value must lie inside the
        # simulation confidence interval.
        imc = IMC(
            num_states=3,
            interactive=[(1, TAU, 2)],
            markov=[(0, 2.0, 1), (2, 2.0, 0)],
        )
        t = 1.0
        result = imc_to_ctmdp(imc)
        mask = result.goal_mask_from_predicate(lambda s: s == 2, via="markov")
        value = timed_reachability(result.ctmdp, mask, t, epsilon=1e-10).value(
            result.ctmdp.initial
        )
        estimate = simulate_imc_reachability(imc, {2}, t, runs=8000, rng=rng)
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= value <= high
