"""Statistical cross-validation of the analytic solvers via simulation."""

import math

import numpy as np
import pytest

from repro.core.scheduler import StationaryScheduler
from repro.ctmc.model import CTMC
from repro.ctmc.reachability import timed_reachability
from repro.errors import ModelError
from repro.models.zoo import two_phase_race_ctmdp
from repro.sim.simulate import (
    simulate_ctmc_reachability,
    simulate_ctmdp_reachability,
)


class TestCTMCSimulation:
    def test_matches_analytic_exponential(self, rng):
        chain = CTMC.from_transitions(2, [(0, 1, 2.0)])
        t = 0.7
        estimate = simulate_ctmc_reachability(chain, {1}, t, runs=8000, rng=rng)
        low, high = estimate.confidence_interval(z=4.0)
        analytic = 1.0 - math.exp(-2.0 * t)
        assert low <= analytic <= high

    def test_matches_analytic_on_cycle_with_loss(self, rng):
        chain = CTMC.from_transitions(
            3, [(0, 1, 1.0), (0, 2, 2.0), (2, 0, 1.0)]
        )
        t = 1.5
        estimate = simulate_ctmc_reachability(chain, {1}, t, runs=8000, rng=rng)
        analytic = timed_reachability(chain, [1], t, epsilon=1e-12)[0]
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= analytic <= high

    def test_self_loops_are_harmless(self, rng):
        from repro.ctmc.uniformization import uniformize

        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        padded = uniformize(chain, rate=10.0)
        t = 0.9
        est = simulate_ctmc_reachability(padded, {1}, t, runs=8000, rng=rng)
        low, high = est.confidence_interval(z=4.0)
        assert low <= 1.0 - math.exp(-t) <= high

    def test_goal_at_start(self, rng):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        estimate = simulate_ctmc_reachability(chain, {0}, 1.0, runs=10, rng=rng)
        assert estimate.probability == 1.0

    def test_invalid_runs_rejected(self, rng):
        chain = CTMC.from_transitions(2, [(0, 1, 1.0)])
        with pytest.raises(ModelError):
            simulate_ctmc_reachability(chain, {1}, 1.0, runs=0, rng=rng)


class TestCTMDPSimulation:
    def test_stationary_scheduler_matches_induced_ctmc(self, rng):
        ctmdp, _goal = two_phase_race_ctmdp()
        scheduler = StationaryScheduler.from_list([1, 0, 0])
        induced = ctmdp.induced_ctmc([1, 0, 0])
        t = 0.5
        analytic = timed_reachability(induced, [2], t, epsilon=1e-12)[0]
        estimate = simulate_ctmdp_reachability(
            ctmdp, scheduler, {2}, t, runs=8000, rng=rng
        )
        low, high = estimate.confidence_interval(z=4.0)
        assert low <= analytic <= high

    def test_standard_error_shrinks(self, rng):
        ctmdp, _ = two_phase_race_ctmdp()
        scheduler = StationaryScheduler.from_list([0, 0, 0])
        small = simulate_ctmdp_reachability(ctmdp, scheduler, {2}, 0.5, runs=200, rng=rng)
        large = simulate_ctmdp_reachability(ctmdp, scheduler, {2}, 0.5, runs=8000, rng=rng)
        assert large.standard_error < small.standard_error

    def test_confidence_interval_clipped(self):
        from repro.sim.simulate import SimulationEstimate

        estimate = SimulationEstimate(probability=0.01, standard_error=0.05, runs=10)
        low, high = estimate.confidence_interval(z=3.0)
        assert low == 0.0
        assert high <= 1.0

    def test_invalid_runs_rejected(self, rng):
        ctmdp, _ = two_phase_race_ctmdp()
        scheduler = StationaryScheduler.from_list([0, 0, 0])
        with pytest.raises(ModelError):
            simulate_ctmdp_reachability(ctmdp, scheduler, {2}, 1.0, runs=-5, rng=rng)
