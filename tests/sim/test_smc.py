"""Tests for the SPRT-based statistical model checking."""

import math

import numpy as np
import pytest

from repro.core.scheduler import StationaryScheduler
from repro.ctmc.model import CTMC
from repro.errors import ModelError
from repro.models.zoo import two_phase_race_ctmdp
from repro.sim.smc import sprt, sprt_ctmc_reachability, sprt_ctmdp_reachability


class TestSPRTCore:
    def test_clear_acceptance(self, rng):
        # True p = 0.9, threshold 0.5: H0 (p >= theta) accepted fast.
        result = sprt(lambda: rng.random() < 0.9, theta=0.5, delta=0.05)
        assert result.accept_h0
        assert result.samples < 200

    def test_clear_rejection(self, rng):
        result = sprt(lambda: rng.random() < 0.1, theta=0.5, delta=0.05)
        assert not result.accept_h0
        assert result.samples < 200

    def test_needs_more_samples_near_threshold(self, rng):
        far = sprt(lambda: rng.random() < 0.9, theta=0.5, delta=0.05)
        near = sprt(lambda: rng.random() < 0.62, theta=0.5, delta=0.05)
        assert near.samples > far.samples

    def test_inconclusive_raises(self, rng):
        with pytest.raises(ModelError, match="inconclusive"):
            sprt(
                lambda: rng.random() < 0.5,
                theta=0.5,
                delta=0.01,
                max_samples=200,
            )

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"theta": 0.0},
            {"theta": 1.0},
            {"theta": 0.5, "delta": 0.0},
            {"theta": 0.01, "delta": 0.05},
            {"theta": 0.5, "alpha": 0.0},
            {"theta": 0.5, "beta": 1.5},
        ],
    )
    def test_parameter_validation(self, kwargs, rng):
        with pytest.raises(ModelError):
            sprt(lambda: True, **kwargs)

    def test_estimate(self, rng):
        result = sprt(lambda: rng.random() < 0.9, theta=0.5, delta=0.05)
        assert 0.0 <= result.estimate <= 1.0


class TestModelWrappers:
    def test_ctmc_query_consistent_with_analytic(self, rng):
        chain = CTMC.from_transitions(2, [(0, 1, 2.0)])
        t = 1.0
        analytic = 1.0 - math.exp(-2.0 * t)  # ~0.865
        high = sprt_ctmc_reachability(chain, {1}, t, theta=0.5, delta=0.05, rng=rng)
        assert high.accept_h0  # p ~ 0.86 >= 0.5
        low = sprt_ctmc_reachability(chain, {1}, t, theta=0.99, delta=0.005, rng=rng)
        assert not low.accept_h0  # p ~ 0.86 < 0.99
        assert abs(analytic - 0.865) < 0.01  # sanity of the reference

    def test_ctmdp_query_under_scheduler(self, rng):
        ctmdp, _goal = two_phase_race_ctmdp()
        scheduler = StationaryScheduler.from_list([1, 0, 0])
        # At t = 2 the reachability under any scheduler is ~1.
        result = sprt_ctmdp_reachability(
            ctmdp, scheduler, {2}, t=2.0, theta=0.5, delta=0.05, rng=rng
        )
        assert result.accept_h0
