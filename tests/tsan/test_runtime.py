"""Tests for the runtime lock-order sanitizer (monitored locks)."""

import threading

import pytest

from repro.errors import LintError
from repro.lint import sanitizing
from repro.tsan.runtime import (
    LockOrderMonitor,
    MonitoredLock,
    lock_order_monitor,
    monitored_lock,
)


@pytest.fixture()
def monitor() -> LockOrderMonitor:
    return LockOrderMonitor()


def locked_pair(monitor: LockOrderMonitor) -> tuple[MonitoredLock, MonitoredLock]:
    return (
        MonitoredLock("A", monitor=monitor),
        MonitoredLock("B", monitor=monitor),
    )


class TestLockOrderMonitor:
    def test_consistent_order_is_silent(self, monitor):
        a, b = locked_pair(monitor)
        for _ in range(3):
            with a, b:
                pass
        assert monitor.edges() == {"A": frozenset({"B"})}

    def test_opposite_orders_raise_t002_in_one_thread(self, monitor):
        # The classic ABBA deadlock, detected from *observed* edges
        # without any second thread: A->B is recorded, then the B->A
        # nesting closes the cycle before blocking.
        a, b = locked_pair(monitor)
        with a, b:
            pass
        with b:
            with pytest.raises(LintError, match="T002") as excinfo:
                a.acquire()
        diagnostic = excinfo.value.diagnostic
        assert diagnostic.code == "T002"
        assert "A" in diagnostic.message and "B" in diagnostic.message

    def test_failed_acquire_leaves_stack_clean(self, monitor):
        a, b = locked_pair(monitor)
        with a, b:
            pass
        with b:
            with pytest.raises(LintError):
                a.acquire()
        assert monitor.held_locks() == ()
        # B itself can still be taken alone.
        with b:
            assert monitor.held_locks() == ("B",)

    def test_relock_is_reported(self, monitor):
        a, _ = locked_pair(monitor)
        with a:
            with pytest.raises(LintError, match="relock"):
                a.acquire()

    def test_three_lock_cycle(self, monitor):
        a = MonitoredLock("A", monitor=monitor)
        b = MonitoredLock("B", monitor=monitor)
        c = MonitoredLock("C", monitor=monitor)
        with a, b:
            pass
        with b, c:
            pass
        with c:
            with pytest.raises(LintError, match="T002"):
                a.acquire()

    def test_held_stacks_are_per_thread(self, monitor):
        a, b = locked_pair(monitor)
        seen: list[tuple[str, ...]] = []

        def other() -> None:
            with b:
                seen.append(monitor.held_locks())

        with a:
            worker = threading.Thread(target=other)
            worker.start()
            worker.join()
            assert monitor.held_locks() == ("A",)
        assert seen == [("B",)]

    def test_reset_forgets_edges(self, monitor):
        a, b = locked_pair(monitor)
        with a, b:
            pass
        monitor.reset()
        assert monitor.edges() == {}
        with b, a:  # would have been a cycle before the reset
            pass


class TestMonitoredLockFactory:
    def test_plain_lock_when_sanitizing_off(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        lock = monitored_lock("test.plain")
        assert not isinstance(lock, MonitoredLock)
        with lock:
            pass

    def test_monitored_lock_under_sanitizing_context(self):
        with sanitizing():
            lock = monitored_lock("test.monitored")
        assert isinstance(lock, MonitoredLock)
        assert lock.monitor is lock_order_monitor()
        lock.monitor.reset()
        with lock:
            assert lock.locked()
        assert not lock.locked()

    def test_monitored_lock_under_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "yes")
        lock = monitored_lock("test.env")
        assert isinstance(lock, MonitoredLock)
        lock.monitor.reset()

    def test_annotated_classes_arm_under_sanitizing(self):
        # The real telemetry classes pick their lock flavour at
        # construction time via monitored_lock.
        from repro.obs.metrics import MetricStore

        lock_order_monitor().reset()
        with sanitizing():
            store = MetricStore()
        assert isinstance(store._lock, MonitoredLock)
        store.count("pushes")
        assert store.counter("pushes") == 1
        lock_order_monitor().reset()

    def test_non_blocking_acquire(self, monitor):
        lock = MonitoredLock("N", monitor=monitor)
        assert lock.acquire(blocking=False)
        lock.release()
        assert monitor.held_locks() == ()
