"""Tests for the AST self-lint (``repro lint --self``, the ``Txxx`` codes)."""

from pathlib import Path

import pytest

from repro.errors import ModelError
from repro.lint import lint_path
from repro.tsan import guarded_by, guards_of, held_by_caller, holds_lock
from repro.tsan.static import lint_self, lint_source, source_root

FIXTURES = Path(__file__).parents[1] / "fixtures" / "tsan"


def codes_of(path: Path) -> set[str]:
    return {d.code for d in lint_source([path])}


class TestRegistry:
    def test_guarded_by_records_discipline(self):
        @guarded_by("_lock", "a", "b")
        class Guarded:
            pass

        assert guards_of(Guarded) == {"_lock": frozenset({"a", "b"})}

    def test_guarded_by_merges_multiple_locks(self):
        @guarded_by("_lock_x", "x")
        @guarded_by("_lock_y", "y")
        class TwoLocks:
            pass

        assert guards_of(TwoLocks) == {
            "_lock_x": frozenset({"x"}),
            "_lock_y": frozenset({"y"}),
        }

    def test_subclass_extends_without_mutating_parent(self):
        @guarded_by("_lock", "a")
        class Parent:
            pass

        @guarded_by("_lock", "b")
        class Child(Parent):
            pass

        assert guards_of(Parent) == {"_lock": frozenset({"a"})}
        assert guards_of(Child) == {"_lock": frozenset({"a", "b"})}

    def test_guarded_by_rejects_non_identifiers(self):
        with pytest.raises(ValueError):
            guarded_by("not an identifier", "a")

    def test_holds_lock_is_queryable(self):
        class Store:
            @holds_lock("_lock")
            def _unsafe(self):
                pass

            def safe(self):
                pass

        assert held_by_caller(Store._unsafe) == "_lock"
        assert held_by_caller(Store.safe) is None


class TestPlantedFixtures:
    def test_unguarded_write_is_t001(self):
        diagnostics = lint_source([FIXTURES / "defect_unguarded_write.py"])
        assert {d.code for d in diagnostics} == {"T001"}
        # Both the read and the write of the read-modify-write window.
        messages = "\n".join(d.message for d in diagnostics)
        assert "_pushes" in messages and "RacyFleetStore._lock" in messages

    def test_lock_cycle_is_t002(self):
        diagnostics = lint_source([FIXTURES / "defect_lock_cycle.py"])
        assert {d.code for d in diagnostics} == {"T002"}
        [cycle] = diagnostics
        assert "_journal_lock" in cycle.message
        assert "_ledger_lock" in cycle.message

    def test_undeclared_lock_is_t003(self):
        assert codes_of(FIXTURES / "defect_undeclared_lock.py") == {"T003"}

    def test_float_equality_is_t004(self):
        diagnostics = lint_source([FIXTURES / "defect_float_eq.py"])
        assert [d.code for d in diagnostics] == ["T004", "T004"]

    def test_rate_sum_is_t005(self):
        diagnostics = lint_source([FIXTURES / "defect_rate_sum.py"])
        assert [d.code for d in diagnostics] == ["T005", "T005"]

    def test_locations_are_file_line(self):
        for diagnostic in lint_source([FIXTURES / "defect_float_eq.py"]):
            name, _, line = diagnostic.location.partition(":")
            assert name.endswith("defect_float_eq.py")
            assert line.isdigit()


class TestSuppression:
    def test_targeted_ignore_silences_one_code(self, tmp_path):
        path = tmp_path / "suppressed.py"
        path.write_text(
            "def check(rate: float) -> bool:\n"
            "    return rate == 0.3  # tsan: ignore[T004]\n"
        )
        assert lint_source([path]) == []

    def test_targeted_ignore_keeps_other_codes(self, tmp_path):
        path = tmp_path / "wrong_code.py"
        path.write_text(
            "def check(rate: float) -> bool:\n"
            "    return rate == 0.3  # tsan: ignore[T001]\n"
        )
        assert [d.code for d in lint_source([path])] == ["T004"]

    def test_blanket_ignore(self, tmp_path):
        path = tmp_path / "blanket.py"
        path.write_text(
            "def total(rates: list) -> float:\n"
            "    return sum(rates)  # tsan: ignore\n"
        )
        assert lint_source([path]) == []


class TestNumericRules:
    def test_integral_float_comparison_is_clean(self, tmp_path):
        path = tmp_path / "integral.py"
        path.write_text(
            "def empty(rate: float) -> bool:\n"
            "    return rate == 0.0\n"
        )
        assert lint_source([path]) == []

    def test_signature_module_is_exempt(self):
        # The quantised-signature module owns the one place where raw
        # float comparison over rates is the point.
        base = source_root() / "repro" / "bisim" / "signatures.py"
        assert base.exists()
        assert {
            d.code for d in lint_source([base])
        }.isdisjoint({"T004", "T005"})

    def test_sum_over_non_rates_is_clean(self, tmp_path):
        path = tmp_path / "generated.py"
        path.write_text(
            "def count(generated: list, operate: list) -> float:\n"
            "    return sum(generated) + sum(operate)\n"
        )
        assert lint_source([path]) == []


class TestSelfLint:
    def test_shipped_tree_is_clean(self):
        report = lint_self()
        assert report.exit_code() == 0, report.render_text()

    def test_report_identifies_target(self):
        report = lint_self()
        assert report.kind == "python"
        assert "(self)" in report.target


class TestLintPathRouting:
    def test_py_paths_route_to_self_lint(self):
        report = lint_path(FIXTURES / "defect_float_eq.py")
        assert report.kind == "python"
        assert report.codes() == {"T004"}
        assert report.exit_code() == 1

    def test_unknown_suffix_mentions_py(self, tmp_path):
        stray = tmp_path / "model.yaml"
        stray.write_text("")
        with pytest.raises(ModelError, match=r"\.py"):
            lint_path(stray)
