"""Tests for the seeded interleaving harness (deterministic races)."""

import importlib.util
from pathlib import Path

import pytest

from repro.errors import LintError
from repro.tsan.harness import (
    CooperativeLock,
    HarnessDeadlock,
    InterleavingHarness,
    find_racy_seed,
)

FIXTURES = Path(__file__).parents[1] / "fixtures" / "tsan"

#: Seed range scanned for a witnessing interleaving; the CI ``tsan``
#: job replays the same range, so keep it in sync with ci.yml.
SEED_RANGE = range(32)


def load_fixture(name: str):
    """Import a planted-defect fixture module from its file path."""
    path = FIXTURES / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"tsan_fixture_{name}", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def counter_bodies(harness: InterleavingHarness, shared: dict, lock=None, n: int = 5):
    """Two bodies incrementing ``shared['count']`` n times each."""

    def body() -> None:
        for _ in range(n):
            if lock is not None:
                with lock:
                    value = shared["count"]
                    shared["count"] = value + 1
            else:
                value = shared["count"]
                shared["count"] = value + 1

    harness.add(body, name="inc-0")
    harness.add(body, name="inc-1")
    harness.trace(__file__)


class TestDeterminism:
    def test_same_seed_same_schedule(self):
        def run(seed: int):
            harness = InterleavingHarness(seed=seed)
            shared = {"count": 0}
            counter_bodies(harness, shared)
            result = harness.run()
            assert result.ok
            return result.schedule, shared["count"]

        first = run(seed=7)
        second = run(seed=7)
        assert first == second

    def test_different_seeds_differ_somewhere(self):
        schedules = set()
        for seed in range(8):
            harness = InterleavingHarness(seed=seed)
            shared = {"count": 0}
            counter_bodies(harness, shared)
            schedules.add(harness.run().schedule)
        assert len(schedules) > 1

    def test_schedule_covers_all_threads(self):
        harness = InterleavingHarness(seed=3)
        shared = {"count": 0}
        counter_bodies(harness, shared)
        result = harness.run()
        assert set(result.schedule) == {0, 1}
        assert shared["count"] <= 10


class TestCooperativeLock:
    def test_lock_makes_counter_exact(self):
        # With the lock, every seed yields the correct total.
        for seed in range(8):
            harness = InterleavingHarness(seed=seed)
            shared = {"count": 0}
            counter_bodies(harness, shared, lock=harness.lock("counter"))
            result = harness.run()
            assert result.ok, result.errors
            assert shared["count"] == 10, f"seed {seed}"

    def test_release_of_unacquired_lock_raises(self):
        harness = InterleavingHarness(seed=0)
        lock = harness.lock("x")
        with pytest.raises(RuntimeError, match="unacquired"):
            lock.release()

    def test_non_blocking_acquire_fails_when_held(self):
        harness = InterleavingHarness(seed=0)
        lock = harness.lock("x")
        outcomes: list[bool] = []

        def holder() -> None:
            with lock:
                pass

        def prober() -> None:
            outcomes.append(lock.acquire(blocking=False))
            if outcomes[-1]:
                lock.release()

        harness.add(holder)
        harness.add(prober)
        result = harness.run()
        assert result.ok
        assert len(outcomes) == 1

    def test_cooperative_lock_feeds_monitor(self):
        harness = InterleavingHarness(seed=1)
        a = harness.lock("A")
        b = harness.lock("B")
        errors: list[BaseException] = []

        def nested(first: CooperativeLock, second: CooperativeLock) -> None:
            try:
                with first, second:
                    pass
            except LintError as error:
                errors.append(error)

        harness.add(lambda: nested(a, b))
        harness.add(lambda: nested(b, a))
        result = harness.run()
        # Whichever body the seed runs first records its edge; the
        # opposite nesting then closes the ABBA cycle and is flagged.
        assert result.ok
        assert len(errors) == 1
        assert "T002" in str(errors[0])


class TestPlantedRace:
    """The acceptance criterion: the planted FleetStore race reproduces
    deterministically under a fixed seed."""

    def build_racy(self, harness: InterleavingHarness):
        fixture = load_fixture("defect_unguarded_write")
        store = fixture.RacyFleetStore()
        harness.trace(fixture.__file__)
        harness.add(lambda: store.record_push("a"), name="pusher-a")
        harness.add(lambda: store.record_push("b"), name="pusher-b")
        return lambda: store.snapshot()[0] != 2  # lost update observed

    def test_find_racy_seed_pins_a_witness(self):
        seed = find_racy_seed(self.build_racy, SEED_RANGE)
        assert seed is not None, (
            "no interleaving in the seed range lost an update; "
            "the planted race no longer reproduces"
        )

    def test_witness_seed_is_stable(self):
        seed = find_racy_seed(self.build_racy, SEED_RANGE)
        schedules = []
        for _ in range(2):
            harness = InterleavingHarness(seed=seed)
            check = self.build_racy(harness)
            result = harness.run()
            assert result.ok
            assert check(), "the witnessing seed stopped witnessing"
            schedules.append(result.schedule)
        assert schedules[0] == schedules[1]

    def test_locked_store_never_races(self):
        # The same interleavings cannot break the fixed store: swap the
        # racy read-modify-write for one under a cooperative lock.
        fixture = load_fixture("defect_unguarded_write")

        def build_fixed(harness: InterleavingHarness):
            store = fixture.RacyFleetStore()
            lock = harness.lock("RacyFleetStore._lock")
            store._lock = lock
            original = store.record_push

            def locked_push(payload: str) -> int:
                with lock:
                    count = store._pushes + 1
                    store._pushes = count
                    store._payloads.append(payload)
                    return count

            store.record_push = locked_push
            assert original is not locked_push
            harness.trace(fixture.__file__, __file__)
            harness.add(lambda: store.record_push("a"), name="pusher-a")
            harness.add(lambda: store.record_push("b"), name="pusher-b")
            return lambda: store.snapshot()[0] != 2

        assert find_racy_seed(build_fixed, SEED_RANGE) is None


class TestLifecycle:
    def test_empty_harness_is_trivially_ok(self):
        assert InterleavingHarness(seed=0).run().ok

    def test_body_exception_is_reported_not_raised(self):
        harness = InterleavingHarness(seed=0)

        def boom() -> None:
            raise ValueError("planted")

        harness.add(boom, name="boom")
        result = harness.run()
        assert not result.ok
        [(name, error)] = result.errors
        assert name == "boom"
        assert isinstance(error, ValueError)

    def test_switch_budget_guards_livelock(self):
        harness = InterleavingHarness(seed=0, max_switches=10)
        lock = harness.lock("held-forever")
        lock._owner = 99  # simulate a foreign owner that never releases

        def wants_lock() -> None:
            with lock:
                pass

        def spins() -> None:
            for _ in range(100):
                pass

        harness.add(wants_lock)
        harness.add(spins)
        harness.trace(__file__)
        result = harness.run()
        assert not result.ok
        assert any(
            isinstance(error, HarnessDeadlock) for _, error in result.errors
        )
