"""Policy artifacts: content addressing and the ``.rpol`` binary format."""

import json

import numpy as np
import pytest

from repro.errors import ModelError
from repro.obs import NumericalCertificate
from repro.policy.artifact import (
    MAGIC,
    PolicyArtifact,
    load_artifact,
    policy_key,
    read_header,
    save_artifact,
)
from repro.policy.store import CompressedDecisions


def _artifact(rows=20, states=7, value=0.25, **extra_meta):
    matrix = np.zeros((rows, states), dtype=np.int32)
    if rows:
        matrix[rows // 2 :, 1] = 1
    meta = {
        "model_key": "k" * 64,
        "objective": "max",
        "t": 100.0,
        "epsilon": 1e-6,
        "value": value,
    }
    meta.update(extra_meta)
    return PolicyArtifact(
        decisions=CompressedDecisions.from_dense(matrix, reverse_rows=True),
        meta=meta,
        certificate=NumericalCertificate.trivial("ctmdp.reachability", 1e-6),
    )


class TestContentAddress:
    def test_key_is_deterministic(self):
        assert _artifact().key == _artifact().key

    def test_key_depends_on_meta_and_decisions(self):
        assert _artifact().key != _artifact(value=0.5).key
        assert _artifact(rows=20).key != _artifact(rows=21).key

    def test_certificate_does_not_enter_the_key(self):
        with_cert = _artifact()
        without = PolicyArtifact(
            decisions=with_cert.decisions, meta=dict(with_cert.meta), certificate=None
        )
        assert policy_key(with_cert) == policy_key(without)

    def test_required_meta_is_validated(self):
        store = CompressedDecisions.empty(3)
        with pytest.raises(ModelError, match="missing"):
            PolicyArtifact(decisions=store, meta={"objective": "max"})
        with pytest.raises(ModelError, match="objective"):
            _artifact(objective="best")


class TestBinaryFormat:
    @pytest.mark.parametrize("mmap", [True, False])
    def test_save_load_round_trip(self, tmp_path, mmap):
        artifact = _artifact(rows=300, states=11, goal="no_premium")
        path = tmp_path / "policy.rpol"
        save_artifact(artifact, path)
        loaded = load_artifact(path, mmap=mmap)
        assert loaded.key == artifact.key
        assert loaded.meta == artifact.meta
        assert loaded.certificate == artifact.certificate
        assert np.array_equal(loaded.decisions.dense(), artifact.decisions.dense())
        assert loaded.decisions.layout() == artifact.decisions.layout()

    def test_header_is_readable_without_arrays(self, tmp_path):
        artifact = _artifact()
        path = artifact.save(tmp_path / "p.rpol")
        header = read_header(path)
        assert header["key"] == artifact.key
        assert header["meta"]["objective"] == "max"
        assert {entry["name"] for entry in header["arrays"]} == set(
            artifact.decisions.arrays()
        )

    def test_bad_magic_is_rejected(self, tmp_path):
        path = tmp_path / "junk.rpol"
        path.write_bytes(b"NOTAPOLICYFILE")
        with pytest.raises(ModelError, match="magic"):
            read_header(path)

    def test_tampered_arrays_fail_the_hash_check(self, tmp_path):
        artifact = _artifact(rows=64, states=9)
        path = artifact.save(tmp_path / "p.rpol")
        raw = bytearray(path.read_bytes())
        header = read_header(path)
        offset = min(int(entry["offset"]) for entry in header["arrays"])
        raw[offset] = (raw[offset] + 1) % 256
        path.write_bytes(bytes(raw))
        with pytest.raises(ModelError, match="hash mismatch"):
            load_artifact(path)

    def test_empty_decisions_round_trip(self, tmp_path):
        artifact = PolicyArtifact(
            decisions=CompressedDecisions.empty(5),
            meta={
                "model_key": "k",
                "objective": "min",
                "t": 0.0,
                "epsilon": 1e-6,
                "value": 0.0,
            },
        )
        loaded = load_artifact(artifact.save(tmp_path / "e.rpol"))
        assert loaded.key == artifact.key
        assert loaded.decisions.shape == (0, 5)


class TestNdjsonExport:
    def test_stream_reconstructs_the_table(self):
        artifact = _artifact(rows=30, states=6)
        lines = list(artifact.export_ndjson())
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        assert header["key"] == artifact.key
        rows = [json.loads(line) for line in lines[1:]]
        assert all(record["kind"] == "row" for record in rows)
        dense = np.empty(artifact.decisions.shape, dtype=np.int32)
        for record, following in zip(rows, rows[1:] + [None]):
            stop = following["row"] if following else len(dense)
            dense[record["row"] : stop] = np.array(record["decisions"], dtype=np.int32)
        assert np.array_equal(dense, artifact.decisions.dense())
        # Change-point streaming beats row-per-line for real schedulers:
        # row 0 plus one record per row differing from its predecessor.
        assert len(rows) == 1 + len(artifact.decisions.change_points())
