"""Induced-chain validation and the registry/engine policy round-trip."""

import numpy as np
import pytest

from repro.engine import ModelRegistry, Query, run_batch
from repro.errors import ModelError
from repro.models import ftwc_direct
from repro.obs import MetricStore
from repro.policy.artifact import PolicyArtifact
from repro.policy.validate import validate_artifact


@pytest.fixture(scope="module")
def ftwc():
    return ftwc_direct.build_ctmdp(1)


def _extract(objective="max", t=50.0, n=1, registry=None):
    """One policy artifact via the engine's recording path."""
    batch = run_batch(
        [Query(model={"family": "ftwc", "n": n}, t=t, objective=objective)],
        registry=registry,
        record_schedulers=True,
    )
    result = batch.results[0]
    assert result.ok and result.policy is not None
    return result.policy


class TestValidation:
    @pytest.mark.parametrize("objective", ["max", "min"])
    def test_optimal_policy_validates(self, ftwc, objective):
        artifact = _extract(objective=objective)
        metrics = MetricStore()
        report = validate_artifact(
            artifact, ftwc.ctmdp, ftwc.goal_mask, metrics=metrics
        )
        assert report.ok
        assert report.deviation <= report.tolerance
        assert report.certificate.healthy
        assert report.certificate.algorithm == "policy.induced_chain"
        assert metrics.counter("policy_validations") == 1
        assert metrics.counter("policy_validations_failed") == 0
        assert metrics.gauge_value("policy_replay_cells_per_second") > 0.0

    def test_forged_value_fails(self, ftwc):
        artifact = _extract()
        forged = PolicyArtifact(
            decisions=artifact.decisions,
            meta={**artifact.meta, "value": 0.5},
            certificate=artifact.certificate,
        )
        metrics = MetricStore()
        report = validate_artifact(
            forged, ftwc.ctmdp, ftwc.goal_mask, metrics=metrics
        )
        assert not report.ok
        assert not report.certificate.healthy
        assert report.deviation > report.tolerance
        assert metrics.counter("policy_validations_failed") == 1

    def test_report_is_serialisable(self, ftwc):
        artifact = _extract()
        report = validate_artifact(artifact, ftwc.ctmdp, ftwc.goal_mask)
        record = report.as_dict()
        assert record["artifact_key"] == artifact.key
        assert record["deviation"] == report.deviation
        assert "induced-chain" in report.describe()


class TestRegistryRoundTrip:
    def test_store_load_replay_equality(self, tmp_path, ftwc):
        registry = ModelRegistry(cache_dir=str(tmp_path))
        artifact = _extract(registry=registry)
        path = registry.store_policy(artifact)
        assert path.exists()
        assert registry.metrics.counter("policies_stored") == 1

        listed = registry.list_policies()
        assert [record["key"] for record in listed] == [artifact.key]

        loaded = registry.load_policy(artifact.key)
        assert loaded.key == artifact.key
        assert np.array_equal(loaded.decisions.dense(), artifact.decisions.dense())
        original = validate_artifact(artifact, ftwc.ctmdp, ftwc.goal_mask)
        replayed = validate_artifact(loaded, ftwc.ctmdp, ftwc.goal_mask)
        assert replayed.replayed_value == original.replayed_value
        assert replayed.ok

    def test_memory_only_registry_refuses_policies(self, ftwc):
        registry = ModelRegistry()
        artifact = _extract()
        with pytest.raises(ModelError, match="memory-only"):
            registry.store_policy(artifact)

    def test_unknown_key_raises(self, tmp_path):
        registry = ModelRegistry(cache_dir=str(tmp_path))
        with pytest.raises(ModelError, match="no stored policy"):
            registry.load_policy("0" * 64)


class TestEngineRecording:
    def test_policies_only_on_request_and_only_for_ctmdps(self):
        queries = [
            Query(model={"family": "ftwc", "n": 1}, t=10.0),
            Query(model={"family": "ftwc-ctmc", "n": 1}, t=10.0),
            Query(model={"family": "ftwc", "n": 1}, t=0.0),
        ]
        plain = run_batch(queries)
        assert all(result.policy is None for result in plain.results)
        assert all(
            "policy" not in result.as_dict() for result in plain.results
        )

        recorded = run_batch(queries, record_schedulers=True)
        ctmdp_result = recorded.results[0]
        assert ctmdp_result.policy is not None
        assert ctmdp_result.policy.objective == "max"
        assert ctmdp_result.policy.t == 10.0
        assert ctmdp_result.policy.value == ctmdp_result.value
        assert ctmdp_result.as_dict()["policy"]["key"] == ctmdp_result.policy.key
        # CTMC queries and trivial horizons record nothing.
        assert recorded.results[1].policy is None
        assert recorded.results[2].policy is None
        counters = recorded.metrics.as_dict()["counters"]
        assert counters["policies_extracted"] == 1
        assert counters["policy_bytes_written"] < counters["policy_dense_bytes"]

    def test_recording_survives_the_worker_pool(self):
        batch = run_batch(
            [
                Query(model={"family": "ftwc", "n": 1}, t=10.0),
                Query(model={"family": "ftwc", "n": 1}, t=10.0, objective="min"),
            ],
            workers=2,
            record_schedulers=True,
        )
        assert all(result.policy is not None for result in batch.results)
        keys = {result.policy.key for result in batch.results}
        assert len(keys) == 2
        assert batch.metrics.counter("policies_extracted") == 2
