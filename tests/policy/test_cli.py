"""The ``repro policy`` subcommand and the shared ``--save-policy`` option."""

import json

import pytest

from repro.cli import main
from repro.policy.artifact import load_artifact


@pytest.fixture()
def saved_policy(tmp_path):
    """A max-objective artifact written by ``repro check --save-policy``."""
    path = tmp_path / "max.rpol"
    code = main(
        [
            "check", 'Pmax=? [ F<=20 "no_premium" ]', "--n", "1",
            "--save-policy", str(path),
        ]
    )
    assert code == 3  # quantitative query: value, no verdict
    assert path.exists()
    return path


class TestSavePolicyOption:
    def test_check_writes_a_loadable_artifact(self, saved_policy):
        artifact = load_artifact(saved_policy)
        assert artifact.objective == "max"
        assert artifact.t == 20.0
        assert artifact.meta["model"]["family"] == "ftwc"
        assert artifact.certificate is not None

    def test_check_refuses_queries_without_schedulers(self, tmp_path, capsys):
        code = main(
            [
                "check", 'S=? [ "no_premium" ]', "--ctmc", "--n", "1",
                "--save-policy", str(tmp_path / "nope.rpol"),
            ]
        )
        assert code == 2
        assert "records no scheduler" in capsys.readouterr().err

    def test_batch_stores_into_directory_and_registry(self, tmp_path, capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(
            json.dumps(
                {
                    "defaults": {"model": {"family": "ftwc", "n": 1}},
                    "queries": [
                        {"t": 10.0},
                        {"t": 10.0, "objective": "min"},
                        {"t": 10.0, "model": {"family": "ftwc-ctmc", "n": 1}},
                    ],
                }
            ),
            encoding="utf-8",
        )
        out = tmp_path / "out.json"
        policy_dir = tmp_path / "policies"
        assert (
            main(
                [
                    "batch", str(queries), "--out", str(out),
                    "--save-policy", f"{policy_dir}/",
                    "--cache-dir", str(tmp_path / "cache"),
                ]
            )
            == 0
        )
        document = json.loads(out.read_text(encoding="utf-8"))
        assert len(document["policies"]) == 2
        for record in document["policies"]:
            assert load_artifact(record["path"]).key == record["key"]
        # Only the CTMDP results carry the policy summary.
        carried = [
            "policy" in result for result in document["results"]
        ]
        assert carried == [True, True, False]

        # The registry destination lands in <cache>/policies/<key>.rpol.
        assert (
            main(
                [
                    "batch", str(queries), "--out", str(out),
                    "--save-policy", "registry",
                    "--cache-dir", str(tmp_path / "cache"),
                ]
            )
            == 0
        )
        stored = sorted((tmp_path / "cache" / "policies").glob("*.rpol"))
        assert len(stored) == 2


class TestPolicyCommand:
    def test_inspect_and_summary(self, saved_policy, capsys):
        assert main(["policy", "inspect", str(saved_policy)]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["meta"]["objective"] == "max"
        assert record["store"]["rows"] > 0

        assert main(["policy", "summary", str(saved_policy)]) == 0
        out = capsys.readouterr().out
        assert "max" in out and "ratio" in out

    def test_diff(self, saved_policy, tmp_path, capsys):
        other = tmp_path / "min.rpol"
        main(
            [
                "check", 'Pmin=? [ F<=20 "no_premium" ]', "--n", "1",
                "--save-policy", str(other),
            ]
        )
        assert main(["policy", "diff", str(saved_policy), str(saved_policy)]) == 0
        assert "identical" in capsys.readouterr().out
        assert main(["policy", "diff", str(saved_policy), str(other)]) == 1
        assert "objective" in capsys.readouterr().out

    def test_replay_validates_the_induced_chain(self, saved_policy, tmp_path, capsys):
        code = main(
            [
                "policy", "replay", str(saved_policy),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 0
        assert "induced-chain ok" in capsys.readouterr().out

    def test_replay_by_key_prefix(self, tmp_path, capsys):
        cache = tmp_path / "cache"
        queries = tmp_path / "queries.json"
        queries.write_text(
            json.dumps([{"model": {"family": "ftwc", "n": 1}, "t": 10.0}]),
            encoding="utf-8",
        )
        main(
            [
                "batch", str(queries), "--out", str(tmp_path / "o.json"),
                "--save-policy", "registry", "--cache-dir", str(cache),
            ]
        )
        document = json.loads((tmp_path / "o.json").read_text(encoding="utf-8"))
        key = document["policies"][0]["key"]

        assert main(["policy", "list", "--cache-dir", str(cache)]) == 0
        assert key[:16] in capsys.readouterr().out

        code = main(
            [
                "policy", "replay", key[:10], "--format", "json",
                "--cache-dir", str(cache),
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["artifact_key"] == key
        assert report["certificate"]["status"] == "ok"

    def test_export_ndjson(self, saved_policy, tmp_path, capsys):
        out = tmp_path / "policy.ndjson"
        assert main(["policy", "export", str(saved_policy), "--out", str(out)]) == 0
        lines = out.read_text(encoding="utf-8").splitlines()
        assert json.loads(lines[0])["kind"] == "header"
        assert all(json.loads(line)["kind"] == "row" for line in lines[1:])

    def test_unknown_artifact_is_a_usage_error(self, tmp_path, capsys):
        code = main(
            [
                "policy", "inspect", str(tmp_path / "missing.rpol"),
                "--cache-dir", str(tmp_path / "cache"),
            ]
        )
        assert code == 2
        assert "no such artifact" in capsys.readouterr().err


class TestReplayAgainstModelFile:
    @pytest.fixture()
    def exported_model(self, tmp_path):
        """The FTWC N=1 uCTMDP exported to an on-disk .tra/.lab pair."""
        prefix = tmp_path / "ftwc1"
        assert main(["export", "--n", "1", "--out-prefix", str(prefix)]) == 0
        assert prefix.with_suffix(".tra").exists()
        assert prefix.with_suffix(".lab").exists()
        return prefix.with_suffix(".tra")

    def test_replay_against_exported_tra(self, saved_policy, exported_model, capsys):
        code = main(
            ["policy", "replay", str(saved_policy), "--against", str(exported_model)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "induced-chain ok" in out
        assert "deviation" in out

    def test_replay_against_json_report(self, saved_policy, exported_model, capsys):
        code = main(
            [
                "policy", "replay", str(saved_policy),
                "--against", str(exported_model), "--format", "json",
            ]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["ok"], report
        assert report["certificate"]["status"] == "ok"

    def test_missing_labels_is_a_usage_error(self, saved_policy, tmp_path, capsys):
        bare = tmp_path / "bare.tra"
        prefix = tmp_path / "full"
        assert main(["export", "--n", "1", "--out-prefix", str(prefix)]) == 0
        bare.write_bytes(prefix.with_suffix(".tra").read_bytes())
        code = main(["policy", "replay", str(saved_policy), "--against", str(bare)])
        assert code == 2
        assert "lab" in capsys.readouterr().err.lower()

    def test_unknown_goal_label_is_a_usage_error(
        self, saved_policy, exported_model, capsys
    ):
        code = main(
            [
                "policy", "replay", str(saved_policy),
                "--against", str(exported_model), "--goal", "no_such_label",
            ]
        )
        assert code == 2
        assert "no_such_label" in capsys.readouterr().err
