"""Compressed decision store: lossless by construction.

The load-bearing property: every way of reading a
:class:`CompressedDecisions` store (random row access, forward and
reverse streaming, dense materialisation, fancy indexing) reproduces the
dense int32 matrix it encodes, bit for bit -- regardless of chunk size,
row orientation, or how the store was built (one-shot ``from_dense`` or
streaming ``PolicyWriter``).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.policy.store import (
    DEFAULT_CHUNK_SIZE,
    CompressedDecisions,
    PolicyWriter,
    rle_encode,
)


@st.composite
def decision_matrices(draw, max_rows: int = 40, max_states: int = 24):
    """A small random decision table with runs (like real schedulers)."""
    rows = draw(st.integers(min_value=0, max_value=max_rows))
    states = draw(st.integers(min_value=1, max_value=max_states))
    base = draw(
        st.lists(
            st.integers(min_value=-1, max_value=4), min_size=states, max_size=states
        )
    )
    matrix = np.tile(np.array(base, dtype=np.int32), (rows, 1))
    # Sprinkle point mutations so consecutive rows mostly agree.
    mutations = draw(
        st.lists(
            st.tuples(
                st.integers(0, max(rows - 1, 0)),
                st.integers(0, states - 1),
                st.integers(-1, 4),
            ),
            max_size=12,
        )
    )
    for row, state, value in mutations:
        if rows:
            matrix[row % rows, state] = value
    return matrix


class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(
        matrix=decision_matrices(),
        chunk_size=st.sampled_from([1, 2, 3, 7, DEFAULT_CHUNK_SIZE]),
        reverse=st.booleans(),
    )
    def test_from_dense_round_trips(self, matrix, chunk_size, reverse):
        store = CompressedDecisions.from_dense(
            matrix, chunk_size=chunk_size, reverse_rows=reverse
        )
        assert store.shape == matrix.shape
        assert np.array_equal(store.dense(), matrix)
        for index in range(len(matrix)):
            assert np.array_equal(store.row(index), matrix[index])
        forward = list(store.iter_rows())
        if forward:
            assert np.array_equal(np.stack(forward), matrix)
        backward = list(store.iter_rows_reversed())
        if backward:
            assert np.array_equal(np.stack(backward), matrix[::-1])

    @settings(max_examples=40, deadline=None)
    @given(matrix=decision_matrices(), chunk_size=st.sampled_from([1, 3, 256]))
    def test_writer_matches_from_dense(self, matrix, chunk_size):
        writer = PolicyWriter(
            num_states=matrix.shape[1] if matrix.size else matrix.shape[1],
            chunk_size=chunk_size,
        )
        for row in matrix:
            writer.append(row)
        store = writer.finish()
        reference = CompressedDecisions.from_dense(matrix, chunk_size=chunk_size)
        assert np.array_equal(store.dense(), matrix)
        assert store.layout() == reference.layout()
        for name, array in store.arrays().items():
            assert np.array_equal(array, reference.arrays()[name]), name

    def test_writer_reuses_caller_buffer_safely(self):
        # The solver reuses one row buffer for every append; the store
        # must not alias it.
        writer = PolicyWriter(num_states=4)
        buffer = np.zeros(4, dtype=np.int32)
        writer.append(buffer)
        buffer[:] = 7
        writer.append(buffer)
        store = writer.finish()
        assert np.array_equal(store.row(0), [0, 0, 0, 0])
        assert np.array_equal(store.row(1), [7, 7, 7, 7])


class TestReverseRows:
    def test_reverse_rows_maps_logical_to_physical(self):
        matrix = np.arange(12, dtype=np.int32).reshape(4, 3)
        writer = PolicyWriter(num_states=3, reverse_rows=True)
        # Backward sweep: the physically-first appended row is the
        # logically-last row.
        for row in matrix[::-1]:
            writer.append(row)
        store = writer.finish()
        assert np.array_equal(store.dense(), matrix)
        assert np.array_equal(
            np.stack(list(store.iter_rows_reversed())), matrix[::-1]
        )


class TestNdarrayDuckTyping:
    def test_indexing_and_equality(self):
        matrix = np.array([[0, 1, -1], [0, 1, -1], [2, 1, -1]], dtype=np.int32)
        store = CompressedDecisions.from_dense(matrix)
        assert len(store) == 3
        assert np.array_equal(store[1], matrix[1])
        assert np.array_equal(store[-1], matrix[-1])
        assert np.array_equal(store[0:2], matrix[0:2])
        assert np.array_equal(np.asarray(store), matrix)
        assert (store == matrix).all()
        assert int(store[2][0]) == 2

    def test_hash_is_disabled(self):
        store = CompressedDecisions.from_dense(np.zeros((1, 2), dtype=np.int32))
        with pytest.raises(TypeError):
            hash(store)


class TestStatistics:
    def test_stationary_policy_compresses_to_one_base_row(self):
        matrix = np.tile(np.array([1, 0, 2, 0], dtype=np.int32), (1000, 1))
        store = CompressedDecisions.from_dense(matrix)
        assert store.is_stationary
        assert len(store.change_points()) == 0
        assert store.compression_ratio > 50.0
        assert store.nbytes < matrix.nbytes

    def test_change_points_and_ratio(self):
        matrix = np.zeros((10, 5), dtype=np.int32)
        matrix[4:, 2] = 1
        matrix[7:, 0] = 3
        store = CompressedDecisions.from_dense(matrix)
        assert not store.is_stationary
        assert store.change_points().tolist() == [4, 7]
        stats = store.stats()
        assert stats["rows"] == 10
        assert stats["states"] == 5
        assert stats["dense_bytes"] == matrix.nbytes

    def test_empty_store(self):
        store = CompressedDecisions.empty(6)
        assert store.shape == (0, 6)
        assert list(store.iter_rows()) == []
        assert store.dense().shape == (0, 6)
        assert store.is_stationary


class TestRLE:
    def test_rle_encode_round_trips(self):
        row = np.array([3, 3, 3, -1, -1, 0, 5], dtype=np.int32)
        values, runs = rle_encode(row)
        rebuilt = np.repeat(values, runs)
        assert np.array_equal(rebuilt, row)

    def test_rle_empty(self):
        values, runs = rle_encode(np.array([], dtype=np.int32))
        assert len(values) == 0 and len(runs) == 0
