"""Compressed vs dense scheduler extraction: bitwise equivalence.

The compressed streaming writer is the default recording format; the
dense matrix stays available behind ``scheduler_format="dense"``
precisely so these tests can assert the two never diverge -- same
decisions, same replays, same values, across objectives, horizons and
the trivial early-return paths.
"""

import numpy as np
import pytest

from repro.core.reachability import (
    PreparedTimedReachability,
    evaluate_step_scheduler,
    replay_step_scheduler,
    timed_reachability,
)
from repro.core.scheduler import greedy_scheduler_from_decisions
from repro.core.until import timed_until
from repro.errors import ModelError
from repro.models import ftwc_direct
from repro.policy.store import CompressedDecisions


@pytest.fixture(scope="module")
def ftwc():
    return ftwc_direct.build_ctmdp(1)


class TestReachabilityExtraction:
    @pytest.mark.parametrize("objective", ["max", "min"])
    @pytest.mark.parametrize("t", [10.0, 100.0])
    def test_compressed_equals_dense(self, ftwc, objective, t):
        prepared = PreparedTimedReachability(ftwc.ctmdp, ftwc.goal_mask)
        compressed = prepared.solve(
            t, objective=objective, record_scheduler=True
        )
        dense = prepared.solve(
            t, objective=objective, record_scheduler=True, scheduler_format="dense"
        )
        assert isinstance(compressed.decisions, CompressedDecisions)
        assert isinstance(dense.decisions, np.ndarray)
        assert np.array_equal(compressed.decisions.dense(), dense.decisions)
        assert np.array_equal(compressed.values, dense.values)

    def test_long_horizon_stays_lossless(self, ftwc):
        result = timed_reachability(
            ftwc.ctmdp, ftwc.goal_mask, 500.0, record_scheduler=True
        )
        reference = timed_reachability(
            ftwc.ctmdp, ftwc.goal_mask, 500.0, record_scheduler=True,
            scheduler_format="dense",
        )
        assert result.iterations == len(result.decisions)
        assert np.array_equal(result.decisions.dense(), reference.decisions)
        # A long FTWC run is where compression pays: >=10x smaller.
        assert result.decisions.compression_ratio >= 10.0

    def test_trivial_horizons_record_nothing(self, ftwc):
        for scheduler_format in ("compressed", "dense"):
            result = timed_reachability(
                ftwc.ctmdp, ftwc.goal_mask, 0.0, record_scheduler=True,
                scheduler_format=scheduler_format,
            )
            assert result.decisions is None
            empty = timed_reachability(
                ftwc.ctmdp, np.zeros(ftwc.ctmdp.num_states, dtype=bool), 10.0,
                record_scheduler=True, scheduler_format=scheduler_format,
            )
            assert empty.decisions is None

    def test_unknown_format_is_rejected(self, ftwc):
        with pytest.raises(ModelError, match="scheduler_format"):
            timed_reachability(
                ftwc.ctmdp, ftwc.goal_mask, 1.0, record_scheduler=True,
                scheduler_format="sparse",
            )


class TestUntilExtraction:
    @pytest.mark.parametrize("objective", ["max", "min"])
    def test_compressed_equals_dense(self, ftwc, objective):
        safe = np.ones(ftwc.ctmdp.num_states, dtype=bool)
        compressed = timed_until(
            ftwc.ctmdp, safe, ftwc.goal_mask, 50.0, objective=objective,
            record_scheduler=True,
        )
        dense = timed_until(
            ftwc.ctmdp, safe, ftwc.goal_mask, 50.0, objective=objective,
            record_scheduler=True, scheduler_format="dense",
        )
        assert np.array_equal(compressed.decisions.dense(), dense.decisions)
        assert np.array_equal(compressed.values, dense.values)


class TestReplay:
    @pytest.mark.parametrize("objective", ["max", "min"])
    def test_replay_is_format_independent(self, ftwc, objective):
        t = 25.0
        result = timed_reachability(
            ftwc.ctmdp, ftwc.goal_mask, t, objective=objective,
            record_scheduler=True,
        )
        dense = result.decisions.dense()
        from_compressed = replay_step_scheduler(
            ftwc.ctmdp, ftwc.goal_mask, t, result.decisions
        )
        from_dense = replay_step_scheduler(ftwc.ctmdp, ftwc.goal_mask, t, dense)
        assert np.array_equal(from_compressed.values, from_dense.values)
        # Replaying the optimal scheduler reproduces the solver's value
        # within the certified bound.
        deviation = float(np.max(np.abs(from_compressed.values - result.values)))
        bound = (
            result.certificate.error_bound
            + from_compressed.certificate.error_bound
        )
        assert deviation <= bound + 1e-12

    def test_evaluate_step_scheduler_accepts_compressed(self, ftwc):
        t = 25.0
        result = timed_reachability(
            ftwc.ctmdp, ftwc.goal_mask, t, record_scheduler=True
        )
        scheduler = greedy_scheduler_from_decisions(result.decisions)
        values = evaluate_step_scheduler(
            ftwc.ctmdp, ftwc.goal_mask, t, scheduler.decisions
        )
        reference = evaluate_step_scheduler(
            ftwc.ctmdp, ftwc.goal_mask, t, result.decisions.dense()
        )
        assert np.array_equal(values, reference)

    def test_replay_trivial_horizon(self, ftwc):
        result = replay_step_scheduler(
            ftwc.ctmdp, ftwc.goal_mask, 0.0, CompressedDecisions.empty(
                ftwc.ctmdp.num_states
            )
        )
        assert np.array_equal(
            result.values, ftwc.goal_mask.astype(float)
        )
        assert result.certificate.error_bound == 0.0
