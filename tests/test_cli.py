"""Tests for the command-line interface."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main, package_version

SMOKE_FILE = Path(__file__).parent.parent / "examples" / "queries_smoke.json"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.ns == [1, 2, 4, 8, 16]
        assert args.solve == [100.0]

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "queries.json"])
        assert args.queries == "queries.json"
        assert args.out is None
        assert args.workers is None
        assert args.timeout is None
        assert not args.no_disk_cache

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--timeout", "5", "--cache-dir", "/tmp/c"]
        )
        assert args.timeout == 5.0
        assert args.cache_dir == "/tmp/c"


class TestExitCodes:
    def test_version_prints_package_version(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_missing_subcommand_exits_2(self, capsys):
        assert main([]) == 2

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        assert "batch" in capsys.readouterr().out


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--ns", "1", "--solve", "50"]) == 0
        out = capsys.readouterr().out
        assert "Inter.st" in out
        assert "Runtime 50h (s)" in out

    def test_table1_without_solving(self, capsys):
        assert main(["table1", "--ns", "1", "--solve"]) == 0
        out = capsys.readouterr().out
        assert "Iter 30000h" in out

    def test_figure4(self, capsys):
        code = main(
            ["figure4", "--n", "1", "--t-max", "100", "--points", "3", "--no-min"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CTMDP sup" in out
        assert "CTMDP inf" not in out

    def test_figure4_too_few_points(self, capsys):
        assert main(["figure4", "--points", "1"]) == 2

    def test_compositional(self, capsys):
        assert main(["compositional", "--ns", "1"]) == 0
        assert "CTMDP states" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        prefix = tmp_path / "ftwc"
        assert main(["export", "--n", "1", "--out-prefix", str(prefix)]) == 0
        assert (tmp_path / "ftwc.tra").exists()
        assert (tmp_path / "ftwc.lab").exists()
        assert (tmp_path / "ftwc.dot").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--kind", "repair", "--n", "1", "--values", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "worst-case P" in out

    def test_sweep_size(self, capsys):
        assert main(["sweep", "--kind", "size", "--values", "1", "2", "--t", "50"]) == 0
        assert "N" in capsys.readouterr().out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out), "--scale", "quick"]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()

    def test_check_query(self, capsys):
        code = main(["check", 'Pmax<=0.01 [ F<=3 "no_premium" ]', "--n", "1"])
        assert code == 0
        assert "[True]" in capsys.readouterr().out

    def test_check_query_violated(self, capsys):
        code = main(["check", 'Pmax<=1e-9 [ F<=100 "no_premium" ]', "--n", "1"])
        assert code == 1
        assert "[False]" in capsys.readouterr().out

    def test_check_on_ctmc_quantitative_exits_3(self, capsys):
        # Quantitative queries have no verdict; exit 3 keeps that
        # distinguishable from "satisfied" (0) and "violated" (1).
        code = main(["check", 'S=? [ "premium" ]', "--n", "1", "--ctmc"])
        assert code == 3
        assert "S=?" in capsys.readouterr().out

    def test_check_quantitative_probability_exits_3(self, capsys):
        code = main(["check", 'Pmax=? [ F<=10 "no_premium" ]', "--n", "1"])
        assert code == 3
        assert "Pmax=?" in capsys.readouterr().out

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "6/6 checks passed" in out
        assert "FAIL" not in out


class TestLintCommand:
    FIXTURES = Path(__file__).parent / "fixtures"

    def test_no_target_is_usage_error(self, capsys):
        assert main(["lint"]) == 2
        assert "nothing to lint" in capsys.readouterr().err

    def test_builtin_ftwc_lints_clean(self, capsys):
        assert main(["lint", "--model", "ftwc", "-n", "1"]) == 0
        out = capsys.readouterr().out
        assert "clean" in out

    def test_builtin_ftwc_json_has_zero_errors(self, capsys):
        assert main(["lint", "--model", "ftwc", "-n", "1", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["errors"] == 0
        assert document["reports"][0]["kind"] == "ctmdp"

    def test_compositional_runs_pipeline_pass(self, capsys):
        assert main(["lint", "--model", "ftwc-compositional", "-n", "1"]) == 0
        assert "pipeline" in capsys.readouterr().out

    def test_defect_fixture_text_output(self, capsys):
        path = str(self.FIXTURES / "defect_nonuniform.tra")
        assert main(["lint", path]) == 1
        out = capsys.readouterr().out
        assert "U001" in out
        assert "error" in out

    def test_defect_fixture_json_output(self, capsys):
        path = str(self.FIXTURES / "defect_nan_rate.tra")
        assert main(["lint", path, "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        found = {
            d["code"]
            for report in document["reports"]
            for d in report["diagnostics"]
        }
        assert "N002" in found
        assert document["errors"] >= 1

    def test_zeno_json_fixture(self, capsys):
        path = str(self.FIXTURES / "defect_zeno.json")
        assert main(["lint", path]) == 1
        assert "A001" in capsys.readouterr().out

    def test_strict_promotes_warnings(self, capsys):
        # The compositional pipeline carries an unreachable-states
        # warning (S001) but no errors: strict flips 0 to 1.
        argv = ["lint", "--model", "ftwc-compositional", "-n", "1"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv + ["--strict"]) == 1

    def test_unreadable_file_is_usage_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing.tra")]) == 2
        assert "cannot lint" in capsys.readouterr().err

    def test_unknown_suffix_is_usage_error(self, tmp_path, capsys):
        path = tmp_path / "model.bin"
        path.write_text("junk")
        assert main(["lint", str(path)]) == 2

    def test_multiple_targets_aggregate(self, capsys):
        clean = ["--model", "ftwc", "-n", "1"]
        bad = str(self.FIXTURES / "defect_nonuniform.tra")
        assert main(["lint", bad] + clean) == 1
        out = capsys.readouterr().out
        assert "U001" in out
        assert "clean" in out

    def test_graph_flag_reports_q_codes(self, capsys):
        targets = [
            str(self.FIXTURES / "defect_unreachable_goal.tra"),
            str(self.FIXTURES / "defect_trap_mec.tra"),
            str(self.FIXTURES / "defect_deadlock.tra"),
            str(self.FIXTURES / "defect_zeno.json"),
        ]
        assert main(["lint", "--graph", "--format", "json"] + targets) == 1
        document = json.loads(capsys.readouterr().out)
        found = {
            d["code"]
            for report in document["reports"]
            for d in report["diagnostics"]
        }
        assert {"Q001", "Q002", "Q003", "Q004"} <= found

    def test_graph_flag_off_by_default(self, capsys):
        path = str(self.FIXTURES / "defect_trap_mec.tra")
        assert main(["lint", path]) == 0
        assert "Q002" not in capsys.readouterr().out

    def test_builtin_ftwc_is_graph_clean(self, capsys):
        assert main(["lint", "--graph", "--model", "ftwc", "-n", "1"]) == 0
        assert "clean" in capsys.readouterr().out


class TestAnalyzeCommand:
    FIXTURES = Path(__file__).parent / "fixtures"

    def test_builtin_family_text(self, capsys):
        assert main(["analyze", "ftwc", "--n", "2"]) == 0
        out = capsys.readouterr().out
        assert "states           275 (275 reachable" in out
        assert "Prob1E=275" in out

    def test_file_json(self, capsys):
        path = str(self.FIXTURES / "defect_trap_mec.tra")
        assert main(["analyze", path, "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["target"] == path
        assert document["scc"]["count"] == 3
        assert document["trap_mecs"] == [[2, 3]]

    def test_goal_label_override(self, capsys):
        path = str(self.FIXTURES / "defect_trap_mec.tra")
        assert main(["analyze", path, "--goal", "goal", "--format", "json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["goal_states"] == 1

    def test_unknown_family_is_usage_error(self, capsys):
        assert main(["analyze", "frobnicate"]) == 2

    def test_missing_file_is_usage_error(self, tmp_path, capsys):
        assert main(["analyze", str(tmp_path / "missing.tra")]) == 2


class TestCheckPrecompute:
    def parse_value(self, out: str) -> float:
        # First line: <query> = <value>; a certificate line follows.
        return float(out.splitlines()[0].split("=")[-1].strip())

    def test_precompute_matches_plain_check(self, capsys):
        query = 'Pmax=? [ F<=100 "no_premium" ]'
        assert main(["check", query, "--n", "1"]) == 3
        plain = self.parse_value(capsys.readouterr().out)
        assert main(["check", query, "--n", "1", "--precompute"]) == 3
        clamped = self.parse_value(capsys.readouterr().out)
        assert abs(plain - clamped) < 1e-9

    def test_batch_precompute_counts_eliminated_states(self, tmp_path, capsys):
        queries = tmp_path / "queries.json"
        queries.write_text(
            json.dumps([{"model": {"family": "ftwc", "n": 1}, "t": 10.0}]),
            encoding="utf-8",
        )
        code = main(
            ["batch", str(queries), "--precompute",
             "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        counters = document["metrics"]["counters"]
        assert counters["precompute_states_eliminated"] > 0
        assert all(r["error"] is None for r in document["results"])


class TestBatchCommand:
    def test_batch_smoke_file(self, tmp_path, capsys):
        code = main(
            ["batch", str(SMOKE_FILE), "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["results"]) == 3
        for record in document["results"]:
            assert record["error"] is None
            assert 0.0 <= record["value"] <= 1.0
        assert document["metrics"]["counters"]["queries_total"] == 3

    def test_warm_cache_skips_construction(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch", str(SMOKE_FILE), "--cache-dir", cache]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["metrics"]["counters"]["models_built"] == 2

        assert main(["batch", str(SMOKE_FILE), "--cache-dir", cache]) == 0
        warm = json.loads(capsys.readouterr().out)
        counters = warm["metrics"]["counters"]
        assert counters["cache_hits_disk"] > 0
        assert "models_built" not in counters

    def test_out_file(self, tmp_path):
        out = tmp_path / "results.json"
        code = main(
            ["batch", str(SMOKE_FILE), "--no-disk-cache", "--out", str(out)]
        )
        assert code == 0
        assert len(json.loads(out.read_text())["results"]) == 3

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken", encoding="utf-8")
        assert main(["batch", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_wrong_shape_exits_2(self, tmp_path, capsys):
        path = tmp_path / "shape.json"
        path.write_text('{"not_queries": []}', encoding="utf-8")
        assert main(["batch", str(path)]) == 2

    def test_failed_query_exits_1(self, tmp_path, capsys):
        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps(
                [
                    {"model": {"family": "ftwc", "n": 1}, "t": 10.0},
                    {"model": {"family": "ftwc", "n": 1}, "t": -1.0},
                ]
            ),
            encoding="utf-8",
        )
        assert main(["batch", str(path), "--no-disk-cache"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["results"][0]["error"] is None
        assert document["results"][1]["error"] is not None


class TestBenchTrendCommand:
    def _write_ledger(self, path, values):
        runs = [
            {
                "commit": f"c{i}",
                "recorded_at": f"2026-01-0{i + 1}T00:00:00+00:00",
                "solve_seconds": value,
            }
            for i, value in enumerate(values)
        ]
        path.write_text(
            json.dumps({"benchmark": "synthetic", "runs": runs}), encoding="utf-8"
        )

    def test_clean_ledger_exits_0(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_ok.json"
        self._write_ledger(ledger, [1.0, 1.1, 0.95])
        assert main(["bench", "trend", "--ledger", str(ledger)]) == 0
        assert "status: ok" in capsys.readouterr().out

    def test_synthetic_regression_exits_1(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_bad.json"
        self._write_ledger(ledger, [1.0, 1.1, 0.95, 50.0])
        assert main(["bench", "trend", "--ledger", str(ledger)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_json_report(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_bad.json"
        self._write_ledger(ledger, [1.0, 1.1, 0.95, 50.0])
        assert main(["bench", "trend", "--ledger", str(ledger), "--json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["status"] == "regressed"
        assert document["regressions"][0]["metric"] == "solve_seconds"

    def test_threshold_flag(self, tmp_path):
        ledger = tmp_path / "BENCH_t.json"
        self._write_ledger(ledger, [1.0, 1.0, 1.4])
        assert main(["bench", "trend", "--ledger", str(ledger)]) == 0
        assert (
            main(["bench", "trend", "--ledger", str(ledger), "--threshold", "0.2"])
            == 1
        )

    def test_repository_ledgers_are_clean(self, monkeypatch, capsys):
        repo = Path(__file__).parent.parent
        assert sorted(repo.glob("BENCH_*.json")), "repo should have ledgers"
        monkeypatch.chdir(repo)
        assert main(["bench", "trend"]) == 0

    def test_no_ledgers_is_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["bench", "trend"]) == 2
        assert "no ledgers" in capsys.readouterr().err

    def test_unreadable_ledger_is_usage_error(self, tmp_path, capsys):
        ledger = tmp_path / "BENCH_junk.json"
        ledger.write_text("not json")
        assert main(["bench", "trend", "--ledger", str(ledger)]) == 2


class TestObsAggCommand:
    def test_bad_scrape_target_is_usage_error(self, capsys):
        assert main(["obs-agg", "--scrape", "name=", "--duration", "0"]) == 2
        assert "bad --scrape target" in capsys.readouterr().err

    def test_gateway_round_trip(self, capsys):
        import threading
        import urllib.request

        from repro.obs.fleet import push_snapshot

        # Run the gateway long enough for one push, on an ephemeral port.
        result: dict[str, int] = {}

        def run() -> None:
            result["code"] = main(["obs-agg", "--port", "0", "--duration", "2.5"])

        thread = threading.Thread(target=run)
        thread.start()
        try:
            import re
            import time

            url = None
            for _ in range(50):
                err = capsys.readouterr().err
                match = re.search(r"listening on (http://\S+)", err)
                if match:
                    url = match.group(1)
                    break
                time.sleep(0.05)
            assert url, "gateway never announced its URL"
            assert push_snapshot(url, {"counters": {"queries_total": 4}}, instance="w")
            with urllib.request.urlopen(f"{url}/metrics", timeout=5.0) as response:
                body = response.read().decode("utf-8")
            assert 'repro_queries_total_total{instance="w"} 4' in body
        finally:
            thread.join(timeout=10.0)
        assert result["code"] == 0


class TestServeCommand:
    def test_serve_round_trip(self, monkeypatch, capsys):
        requests = [
            json.dumps({"op": "ping"}),
            json.dumps({"model": {"family": "ftwc", "n": 1}, "t": 10.0}),
            json.dumps({"op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        assert main(["serve", "--no-disk-cache"]) == 0
        responses = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert responses[0] == {"ok": True}
        assert responses[1]["error"] is None
        assert responses[2]["shutdown"] is True
