"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.ns == [1, 2, 4, 8, 16]
        assert args.solve == [100.0]


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--ns", "1", "--solve", "50"]) == 0
        out = capsys.readouterr().out
        assert "Inter.st" in out
        assert "Runtime 50h (s)" in out

    def test_table1_without_solving(self, capsys):
        assert main(["table1", "--ns", "1", "--solve"]) == 0
        out = capsys.readouterr().out
        assert "Iter 30000h" in out

    def test_figure4(self, capsys):
        code = main(
            ["figure4", "--n", "1", "--t-max", "100", "--points", "3", "--no-min"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CTMDP sup" in out
        assert "CTMDP inf" not in out

    def test_figure4_too_few_points(self, capsys):
        assert main(["figure4", "--points", "1"]) == 2

    def test_compositional(self, capsys):
        assert main(["compositional", "--ns", "1"]) == 0
        assert "CTMDP states" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        prefix = tmp_path / "ftwc"
        assert main(["export", "--n", "1", "--out-prefix", str(prefix)]) == 0
        assert (tmp_path / "ftwc.tra").exists()
        assert (tmp_path / "ftwc.lab").exists()
        assert (tmp_path / "ftwc.dot").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--kind", "repair", "--n", "1", "--values", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "worst-case P" in out

    def test_sweep_size(self, capsys):
        assert main(["sweep", "--kind", "size", "--values", "1", "2", "--t", "50"]) == 0
        assert "N" in capsys.readouterr().out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out), "--scale", "quick"]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()

    def test_check_query(self, capsys):
        code = main(["check", 'Pmax<=0.01 [ F<=3 "no_premium" ]', "--n", "1"])
        assert code == 0
        assert "[True]" in capsys.readouterr().out

    def test_check_query_violated(self, capsys):
        code = main(["check", 'Pmax<=1e-9 [ F<=100 "no_premium" ]', "--n", "1"])
        assert code == 1
        assert "[False]" in capsys.readouterr().out

    def test_check_on_ctmc(self, capsys):
        code = main(["check", 'S=? [ "premium" ]', "--n", "1", "--ctmc"])
        assert code == 0
        assert "S=?" in capsys.readouterr().out

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "6/6 checks passed" in out
        assert "FAIL" not in out
