"""Tests for the command-line interface."""

import io
import json
from pathlib import Path

import pytest

from repro.cli import build_parser, main, package_version

SMOKE_FILE = Path(__file__).parent.parent / "examples" / "queries_smoke.json"


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table1_defaults(self):
        args = build_parser().parse_args(["table1"])
        assert args.ns == [1, 2, 4, 8, 16]
        assert args.solve == [100.0]

    def test_batch_defaults(self):
        args = build_parser().parse_args(["batch", "queries.json"])
        assert args.queries == "queries.json"
        assert args.out is None
        assert args.workers is None
        assert args.timeout is None
        assert not args.no_disk_cache

    def test_serve_arguments(self):
        args = build_parser().parse_args(
            ["serve", "--timeout", "5", "--cache-dir", "/tmp/c"]
        )
        assert args.timeout == 5.0
        assert args.cache_dir == "/tmp/c"


class TestExitCodes:
    def test_version_prints_package_version(self, capsys):
        assert main(["--version"]) == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {package_version()}"

    def test_unknown_subcommand_exits_2(self, capsys):
        assert main(["frobnicate"]) == 2

    def test_missing_subcommand_exits_2(self, capsys):
        assert main([]) == 2

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        assert "batch" in capsys.readouterr().out


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1", "--ns", "1", "--solve", "50"]) == 0
        out = capsys.readouterr().out
        assert "Inter.st" in out
        assert "Runtime 50h (s)" in out

    def test_table1_without_solving(self, capsys):
        assert main(["table1", "--ns", "1", "--solve"]) == 0
        out = capsys.readouterr().out
        assert "Iter 30000h" in out

    def test_figure4(self, capsys):
        code = main(
            ["figure4", "--n", "1", "--t-max", "100", "--points", "3", "--no-min"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "CTMDP sup" in out
        assert "CTMDP inf" not in out

    def test_figure4_too_few_points(self, capsys):
        assert main(["figure4", "--points", "1"]) == 2

    def test_compositional(self, capsys):
        assert main(["compositional", "--ns", "1"]) == 0
        assert "CTMDP states" in capsys.readouterr().out

    def test_export(self, tmp_path, capsys):
        prefix = tmp_path / "ftwc"
        assert main(["export", "--n", "1", "--out-prefix", str(prefix)]) == 0
        assert (tmp_path / "ftwc.tra").exists()
        assert (tmp_path / "ftwc.lab").exists()
        assert (tmp_path / "ftwc.dot").exists()
        out = capsys.readouterr().out
        assert "wrote" in out

    def test_sweep(self, capsys):
        assert main(["sweep", "--kind", "repair", "--n", "1", "--values", "1", "2"]) == 0
        out = capsys.readouterr().out
        assert "worst-case P" in out

    def test_sweep_size(self, capsys):
        assert main(["sweep", "--kind", "size", "--values", "1", "2", "--t", "50"]) == 0
        assert "N" in capsys.readouterr().out

    def test_report(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        assert main(["report", "--out", str(out), "--scale", "quick"]) == 0
        assert out.exists()
        assert "Reproduction report" in out.read_text()

    def test_check_query(self, capsys):
        code = main(["check", 'Pmax<=0.01 [ F<=3 "no_premium" ]', "--n", "1"])
        assert code == 0
        assert "[True]" in capsys.readouterr().out

    def test_check_query_violated(self, capsys):
        code = main(["check", 'Pmax<=1e-9 [ F<=100 "no_premium" ]', "--n", "1"])
        assert code == 1
        assert "[False]" in capsys.readouterr().out

    def test_check_on_ctmc(self, capsys):
        code = main(["check", 'S=? [ "premium" ]', "--n", "1", "--ctmc"])
        assert code == 0
        assert "S=?" in capsys.readouterr().out

    def test_selfcheck(self, capsys):
        assert main(["selfcheck"]) == 0
        out = capsys.readouterr().out
        assert "6/6 checks passed" in out
        assert "FAIL" not in out


class TestBatchCommand:
    def test_batch_smoke_file(self, tmp_path, capsys):
        code = main(
            ["batch", str(SMOKE_FILE), "--cache-dir", str(tmp_path / "cache")]
        )
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        assert len(document["results"]) == 3
        for record in document["results"]:
            assert record["error"] is None
            assert 0.0 <= record["value"] <= 1.0
        assert document["metrics"]["counters"]["queries_total"] == 3

    def test_warm_cache_skips_construction(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        assert main(["batch", str(SMOKE_FILE), "--cache-dir", cache]) == 0
        cold = json.loads(capsys.readouterr().out)
        assert cold["metrics"]["counters"]["models_built"] == 2

        assert main(["batch", str(SMOKE_FILE), "--cache-dir", cache]) == 0
        warm = json.loads(capsys.readouterr().out)
        counters = warm["metrics"]["counters"]
        assert counters["cache_hits_disk"] > 0
        assert "models_built" not in counters

    def test_out_file(self, tmp_path):
        out = tmp_path / "results.json"
        code = main(
            ["batch", str(SMOKE_FILE), "--no-disk-cache", "--out", str(out)]
        )
        assert code == 0
        assert len(json.loads(out.read_text())["results"]) == 3

    def test_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["batch", str(tmp_path / "nope.json")]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_invalid_json_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{broken", encoding="utf-8")
        assert main(["batch", str(path)]) == 2
        assert "invalid JSON" in capsys.readouterr().err

    def test_wrong_shape_exits_2(self, tmp_path, capsys):
        path = tmp_path / "shape.json"
        path.write_text('{"not_queries": []}', encoding="utf-8")
        assert main(["batch", str(path)]) == 2

    def test_failed_query_exits_1(self, tmp_path, capsys):
        path = tmp_path / "partial.json"
        path.write_text(
            json.dumps(
                [
                    {"model": {"family": "ftwc", "n": 1}, "t": 10.0},
                    {"model": {"family": "ftwc", "n": 1}, "t": -1.0},
                ]
            ),
            encoding="utf-8",
        )
        assert main(["batch", str(path), "--no-disk-cache"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["results"][0]["error"] is None
        assert document["results"][1]["error"] is not None


class TestServeCommand:
    def test_serve_round_trip(self, monkeypatch, capsys):
        requests = [
            json.dumps({"op": "ping"}),
            json.dumps({"model": {"family": "ftwc", "n": 1}, "t": 10.0}),
            json.dumps({"op": "shutdown"}),
        ]
        monkeypatch.setattr("sys.stdin", io.StringIO("\n".join(requests) + "\n"))
        assert main(["serve", "--no-disk-cache"]) == 0
        responses = [
            json.loads(line) for line in capsys.readouterr().out.splitlines()
        ]
        assert responses[0] == {"ok": True}
        assert responses[1]["error"] is None
        assert responses[2]["shutdown"] is True
