"""Tests for the exception hierarchy contract."""

import pytest

from repro.errors import (
    CompositionError,
    ModelError,
    NonUniformError,
    NumericalError,
    ReproError,
    SchedulerError,
    TransformationError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            ModelError,
            NonUniformError,
            TransformationError,
            NumericalError,
            CompositionError,
            SchedulerError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)
        with pytest.raises(ReproError):
            raise exception("boom")

    def test_non_uniform_is_a_model_error(self):
        # Callers catching structural problems also catch uniformity ones.
        assert issubclass(NonUniformError, ModelError)

    def test_library_never_raises_bare_exceptions(self):
        """Representative API misuses map to the library hierarchy."""
        from repro.ctmc.model import CTMC
        from repro.imc.model import IMC
        from repro.numerics.foxglynn import fox_glynn

        with pytest.raises(ReproError):
            IMC(num_states=0)
        with pytest.raises(ReproError):
            CTMC.from_transitions(1, [(0, 0, -1.0)])
        with pytest.raises(ReproError):
            fox_glynn(-5.0)
