"""Smoke tests: every example script must run to completion.

Examples are documentation that executes; a broken example is a bug.
The heavyweight FTWC sweep examples are marked slow and excluded from
the default run (``-m "not slow"`` has no effect by default since we do
run them; they take tens of seconds).
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 300.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "uniform rate E = 4.10" in out
        assert "worst-case P" in out

    def test_scheduler_extraction(self):
        out = run_example("scheduler_extraction.py")
        assert "sup over schedulers" in out
        assert "Monte-Carlo" in out

    def test_time_constraints(self):
        out = run_example("time_constraints.py")
        assert "quotient bisimilar to original: True" in out

    def test_job_scheduling(self):
        out = run_example("job_scheduling.py")
        assert "best schedule" in out
        assert "first decision" in out

    @pytest.mark.slow
    def test_ftwc_analysis(self):
        out = run_example("ftwc_analysis.py", timeout=600.0)
        assert "Table 1" in out
        assert "agree" in out

    @pytest.mark.slow
    def test_ftwc_sensitivity(self):
        out = run_example("ftwc_sensitivity.py", timeout=600.0)
        assert "redundancy" in out
        assert "expected time" in out
