"""The one-call analysis pipeline behind ``repro analyze``."""

import json
from pathlib import Path

import numpy as np

from repro.graph import analyze_model
from repro.io.tra import read_ctmdp_tra
from repro.models import ftwc_direct
from repro.obs import MetricStore

FIXTURES = Path(__file__).parents[1] / "fixtures"


class TestFTWC:
    def test_structural_summary(self):
        model = ftwc_direct.build_ctmdp(2)
        analysis = analyze_model(model.ctmdp, goal=model.goal_mask)
        assert analysis.kind == "ctmdp"
        assert analysis.num_states == 275
        assert analysis.num_reachable == 275
        assert int(analysis.deadlocks.sum()) == 0
        # The FTWC is one big communicating class: a single bottom SCC
        # that is also the unique (closed) MEC.
        assert analysis.scc.num_components == 1
        assert analysis.bottom_sccs == [0]
        assert len(analysis.mecs) == 1
        assert analysis.mecs[0].closed
        assert analysis.mecs[0].num_states == 275
        assert analysis.trap_mecs() == []
        assert analysis.qualitative is not None
        assert analysis.qualitative.counts()["prob1_forall"] == 275

    def test_as_dict_is_json_ready(self):
        model = ftwc_direct.build_ctmdp(1)
        analysis = analyze_model(model.ctmdp, goal=model.goal_mask)
        document = json.loads(json.dumps(analysis.as_dict()))
        assert document["kind"] == "ctmdp"
        assert document["states"] == analysis.num_states
        assert document["scc"]["count"] == 1
        assert document["mec"]["closed"] == 1
        assert document["qualitative"]["prob0_forall"] == 0
        assert document["trap_mecs"] == []

    def test_render_text_sections(self):
        model = ftwc_direct.build_ctmdp(1)
        text = analyze_model(model.ctmdp, goal=model.goal_mask).render_text()
        for fragment in ("model kind", "SCCs", "MECs", "qualitative", "trap MECs"):
            assert fragment in text

    def test_metrics_recorded(self):
        model = ftwc_direct.build_ctmdp(1)
        metrics = MetricStore()
        analyze_model(model.ctmdp, goal=model.goal_mask, metrics=metrics)
        assert metrics.counter("graph_analyses") == 1


class TestDefectFixture:
    def test_trap_mec_fixture(self):
        ctmdp = read_ctmdp_tra(FIXTURES / "defect_trap_mec.tra")
        goal = np.zeros(ctmdp.num_states, dtype=bool)
        goal[1] = True
        analysis = analyze_model(ctmdp, goal=goal)
        assert analysis.scc.num_components == 3
        assert len(analysis.closed_mecs()) == 2
        traps = analysis.trap_mecs()
        assert len(traps) == 1
        assert traps[0].states.tolist() == [2, 3]
        counts = analysis.qualitative.counts()
        assert counts == {
            "prob0_forall": 2,
            "prob0_exists": 2,
            "prob1_exists": 1,
            "prob1_forall": 1,
        }

    def test_without_goal_no_qualitative_block(self):
        ctmdp = read_ctmdp_tra(FIXTURES / "defect_trap_mec.tra")
        analysis = analyze_model(ctmdp)
        assert analysis.qualitative is None
        assert "qualitative" not in analysis.as_dict()
        assert analysis.trap_mecs() == []
