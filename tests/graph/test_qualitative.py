"""Qualitative Prob0/Prob1 sets: oracles, invariants, numeric agreement.

The brute-force oracle exploits that memoryless schedulers suffice for
qualitative reachability: for models small enough to enumerate every
stationary scheduler, each induced chain is classified exactly with
scipy's SCC machinery (``Pr = 0`` iff no path to the goal, ``Pr = 1``
iff every reachable bottom SCC of the goal-absorbed chain is a goal
state), and the four sets are the any/all aggregates over schedulers.
"""

import itertools

import numpy as np
import pytest
import scipy.sparse as sp
import scipy.sparse.csgraph as csgraph
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ctmdp import CTMDP
from repro.core.reachability import timed_reachability, unbounded_reachability
from repro.graph import (
    graph_of,
    prob0_exists,
    prob0_forall,
    prob1_exists,
    prob1_forall,
    qualitative_analysis,
)
from repro.models import ftwc_direct
from tests.core.test_reachability_properties import (
    models_with_goals,
    random_uniform_ctmdps,
)


@st.composite
def small_models_with_goals(draw):
    """Small enough to enumerate every stationary scheduler."""
    ctmdp = draw(random_uniform_ctmdps(max_states=4))
    mask = np.zeros(ctmdp.num_states, dtype=bool)
    mask[draw(st.integers(0, ctmdp.num_states - 1))] = True
    return ctmdp, mask


def classify_chain(adjacency: sp.csr_matrix, goal: np.ndarray):
    """Exact (prob0, prob1) masks of one induced chain via scipy.

    ``adjacency`` is the boolean support of the goal-absorbed chain.
    """
    n = goal.shape[0]
    # Transitive reachability including the state itself.
    closure = csgraph.shortest_path(adjacency, method="D", unweighted=True)
    reaches = np.isfinite(closure)
    prob0 = ~(reaches @ goal.astype(bool))
    _, labels = csgraph.connected_components(
        adjacency, directed=True, connection="strong"
    )
    # Bottom SCCs: no edge leaves the component (deadlocks included).
    rows, cols = adjacency.nonzero()
    has_exit = np.zeros(labels.max() + 1, dtype=bool)
    cross = labels[rows] != labels[cols]
    has_exit[labels[rows[cross]]] = True
    bottom_goal_free = np.zeros(n, dtype=bool)
    for c in range(labels.max() + 1):
        members = np.flatnonzero(labels == c)
        if not has_exit[c] and not goal[members].any():
            bottom_goal_free[members] = True
    prob1 = ~(reaches @ bottom_goal_free)
    return prob0, prob1


def oracle_sets(ctmdp: CTMDP, goal: np.ndarray):
    """The four qualitative sets by enumerating stationary schedulers."""
    n = ctmdp.num_states
    graph = graph_of(ctmdp)
    counts = np.diff(graph.choice_ptr)
    p0 = []
    p1 = []
    for pick in itertools.product(*(range(c) for c in counts)):
        rows_list = []
        cols_list = []
        for state in range(n):
            if goal[state]:
                rows_list.append(state)
                cols_list.append(state)
                continue
            row = int(graph.choice_ptr[state]) + pick[state]
            for target in graph.row_targets(row):
                rows_list.append(state)
                cols_list.append(int(target))
        adjacency = sp.csr_matrix(
            (np.ones(len(rows_list), dtype=bool), (rows_list, cols_list)),
            shape=(n, n),
        )
        zero, one = classify_chain(adjacency, goal)
        p0.append(zero)
        p1.append(one)
    p0 = np.array(p0)
    p1 = np.array(p1)
    return {
        "prob0_forall": p0.all(axis=0),
        "prob0_exists": p0.any(axis=0),
        "prob1_exists": p1.any(axis=0),
        "prob1_forall": p1.all(axis=0),
    }


@pytest.fixture
def maze() -> CTMDP:
    """0 chooses a sure path to goal 1 or a coin that may drop into the
    trap 2; 3 is disconnected."""
    return CTMDP.from_transitions(
        4,
        [
            (0, "sure", {1: 1.0}),
            (0, "coin", {1: 1.0, 2: 1.0}),
            (1, "stay", {1: 1.0}),
            (2, "stay", {2: 1.0}),
            (3, "stay", {3: 1.0}),
        ],
    )


class TestMaze:
    def test_four_sets(self, maze):
        analysis = qualitative_analysis(maze, [1])
        np.testing.assert_array_equal(
            analysis.prob0_forall, [False, False, True, True]
        )
        # The coin scheduler avoids nothing for sure, but never *reaches*
        # for sure either -- only the "sure" action is almost-sure.
        np.testing.assert_array_equal(
            analysis.prob0_exists, [False, False, True, True]
        )
        np.testing.assert_array_equal(
            analysis.prob1_exists, [True, True, False, False]
        )
        np.testing.assert_array_equal(
            analysis.prob1_forall, [False, True, False, False]
        )
        assert analysis.counts() == {
            "prob0_forall": 2,
            "prob0_exists": 2,
            "prob1_exists": 2,
            "prob1_forall": 1,
        }

    def test_prob0_exists_witness(self, maze):
        graph = graph_of(maze)
        zero, witness = prob0_exists(graph, [1], with_witness=True)
        np.testing.assert_array_equal(zero, [False, False, True, True])
        # The self-loops are the goal-avoiding choices.
        assert witness[2] == 0 and witness[3] == 0
        assert witness[0] == -1 and witness[1] == -1


class TestOracle:
    @given(data=small_models_with_goals())
    @settings(max_examples=50, deadline=None)
    def test_all_four_sets_match_scheduler_enumeration(self, data):
        ctmdp, goal = data
        graph = graph_of(ctmdp)
        expected = oracle_sets(ctmdp, goal)
        np.testing.assert_array_equal(
            prob0_forall(graph, goal), expected["prob0_forall"]
        )
        np.testing.assert_array_equal(
            np.asarray(prob0_exists(graph, goal)), expected["prob0_exists"]
        )
        np.testing.assert_array_equal(
            prob1_exists(graph, goal), expected["prob1_exists"]
        )
        np.testing.assert_array_equal(
            prob1_forall(graph, goal), expected["prob1_forall"]
        )


class TestInvariants:
    @given(data=models_with_goals())
    @settings(max_examples=60, deadline=None)
    def test_set_inclusions(self, data):
        ctmdp, goal = data
        analysis = qualitative_analysis(ctmdp, goal)
        # Forall implies exists on both sides, goal states are certain,
        # and certainty excludes impossibility.
        assert (analysis.prob0_forall <= analysis.prob0_exists).all()
        assert (analysis.prob1_forall <= analysis.prob1_exists).all()
        assert analysis.prob1_forall[goal].all()
        assert not (analysis.prob1_exists & analysis.prob0_forall).any()
        assert not (analysis.prob1_forall & analysis.prob0_exists).any()


class TestNumericAgreement:
    @given(data=models_with_goals(), t=st.floats(0.5, 25.0))
    @settings(max_examples=40, deadline=None)
    def test_prob0_states_have_zero_timed_value(self, data, t):
        """Prob0A states stay at exactly zero under max timed VI, and
        Prob0E states under min -- no round-off ever leaks mass in."""
        ctmdp, goal = data
        graph = graph_of(ctmdp)
        sup = timed_reachability(ctmdp, goal, t, epsilon=1e-10).values
        assert (sup[prob0_forall(graph, goal)] == 0.0).all()
        inf = timed_reachability(
            ctmdp, goal, t, epsilon=1e-10, objective="min"
        ).values
        assert (inf[np.asarray(prob0_exists(graph, goal))] == 0.0).all()

    @given(data=models_with_goals())
    @settings(max_examples=30, deadline=None)
    def test_prob1_states_reach_one_in_unbounded_vi(self, data):
        """Unbounded VI converges to 1 on the Prob1 set of its objective
        (the strategy's transition weights bound the contraction factor
        away from 1, so tol=1e-13 lands well within 1e-6)."""
        ctmdp, goal = data
        graph = graph_of(ctmdp)
        sup = unbounded_reachability(ctmdp, goal, objective="max", tol=1e-13)
        assert (sup[prob1_exists(graph, goal)] >= 1.0 - 1e-6).all()
        inf = unbounded_reachability(ctmdp, goal, objective="min", tol=1e-13)
        assert (inf[prob1_forall(graph, goal)] >= 1.0 - 1e-6).all()

    @given(data=models_with_goals(), t=st.floats(0.5, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_timed_value_positive_outside_prob0(self, data, t):
        """Conversely: any state outside Prob0A has strictly positive
        maximal timed probability at every positive horizon."""
        ctmdp, goal = data
        graph = graph_of(ctmdp)
        sup = timed_reachability(ctmdp, goal, t, epsilon=1e-12).values
        reachable_mass = ~prob0_forall(graph, goal)
        assert (sup[reachable_mass] > 0.0).all()


class TestFTWCAnchor:
    def test_every_state_is_almost_sure(self):
        """In the FTWC the premium condition is revisited from anywhere:
        all 275 states of N=2 are Prob1 for both objectives and the
        Prob0 sets are empty."""
        model = ftwc_direct.build_ctmdp(2)
        analysis = qualitative_analysis(model.ctmdp, model.goal_mask)
        assert analysis.counts() == {
            "prob0_forall": 0,
            "prob0_exists": 0,
            "prob1_exists": 275,
            "prob1_forall": 275,
        }
