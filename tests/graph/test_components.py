"""SCC and MEC decomposition tests, cross-checked against scipy."""

import numpy as np
import scipy.sparse.csgraph as csgraph
from hypothesis import given, settings

from repro.core.ctmdp import CTMDP
from repro.graph import (
    bottom_components,
    condensation_edges,
    graph_of,
    maximal_end_components,
    strongly_connected_components,
)
from tests.core.test_reachability_properties import random_uniform_ctmdps


def partition_of(labels: np.ndarray) -> set[frozenset[int]]:
    """Label vector as a labelling-independent partition of the states."""
    groups: dict[int, set[int]] = {}
    for state, label in enumerate(labels):
        groups.setdefault(int(label), set()).add(state)
    return {frozenset(members) for members in groups.values()}


def two_chamber_model() -> CTMDP:
    """0 <-> 1 feed into the closed cycle 2 <-> 3; 4 is a free agent.

    The condensation is {0,1} -> {2,3} with {4} isolated; {2,3} and {4}
    are the bottom components.
    """
    return CTMDP.from_transitions(
        5,
        [
            (0, "swap", {1: 2.0}),
            (0, "leak", {2: 2.0}),
            (1, "swap", {0: 2.0}),
            (2, "fwd", {3: 2.0}),
            (3, "back", {2: 2.0}),
            (4, "stay", {4: 2.0}),
        ],
    )


class TestSCC:
    def test_two_chamber_partition(self):
        graph = graph_of(two_chamber_model())
        scc = strongly_connected_components(graph)
        assert scc.num_components == 3
        assert partition_of(scc.component) == {
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4}),
        }

    def test_reverse_topological_ids(self):
        graph = graph_of(two_chamber_model())
        scc = strongly_connected_components(graph)
        for a, b in condensation_edges(graph, scc):
            assert a > b, "condensation edge must descend in component id"

    def test_bottom_components(self):
        graph = graph_of(two_chamber_model())
        scc = strongly_connected_components(graph)
        bottoms = {frozenset(scc.members(c).tolist()) for c in bottom_components(graph, scc)}
        assert bottoms == {frozenset({2, 3}), frozenset({4})}

    def test_sizes_sum_to_states(self):
        graph = graph_of(two_chamber_model())
        scc = strongly_connected_components(graph)
        assert int(scc.sizes().sum()) == graph.num_states

    @given(ctmdp=random_uniform_ctmdps())
    @settings(max_examples=80, deadline=None)
    def test_matches_scipy_on_random_models(self, ctmdp):
        graph = graph_of(ctmdp)
        ours = strongly_connected_components(graph)
        n_ref, labels_ref = csgraph.connected_components(
            graph.union_adjacency, directed=True, connection="strong"
        )
        assert ours.num_components == n_ref
        assert partition_of(ours.component) == partition_of(labels_ref)

    @given(ctmdp=random_uniform_ctmdps())
    @settings(max_examples=40, deadline=None)
    def test_reverse_topological_on_random_models(self, ctmdp):
        graph = graph_of(ctmdp)
        scc = strongly_connected_components(graph)
        for a, b in condensation_edges(graph, scc):
            assert a > b


class TestMEC:
    def test_two_chamber_mecs(self):
        graph = graph_of(two_chamber_model())
        mecs = maximal_end_components(graph)
        found = {frozenset(mec.states.tolist()): mec.closed for mec in mecs}
        # {0,1} is an end component via the swap actions but state 0's
        # leak row makes it open; the cycle and the self-loop are closed.
        assert found == {
            frozenset({0, 1}): False,
            frozenset({2, 3}): True,
            frozenset({4}): True,
        }

    def test_singleton_needs_a_self_loop(self):
        # 0 -> 1 -> (deadlock): no state can circulate, so no MEC.
        model = CTMDP.from_transitions(
            3, [(0, "a", {1: 1.0}), (1, "a", {2: 1.0})]
        )
        assert maximal_end_components(graph_of(model)) == []

    @given(ctmdp=random_uniform_ctmdps())
    @settings(max_examples=60, deadline=None)
    def test_invariants_on_random_models(self, ctmdp):
        graph = graph_of(ctmdp)
        mecs = maximal_end_components(graph)
        seen: set[int] = set()
        for mec in mecs:
            members = set(mec.states.tolist())
            # MECs are pairwise disjoint.
            assert not (members & seen)
            seen |= members
            # Every kept row starts and stays inside the component.
            for row in mec.rows:
                assert int(graph.row_sources[row]) in members
                assert set(graph.row_targets(row).tolist()) <= members
            # The closed flag means *no original row* of a member escapes.
            escapes = any(
                not set(graph.row_targets(row).tolist()) <= members
                for state in members
                for row in graph.rows_of(state)
            )
            assert mec.closed == (not escapes)

    @given(ctmdp=random_uniform_ctmdps())
    @settings(max_examples=40, deadline=None)
    def test_bottom_sccs_are_covered(self, ctmdp):
        """Every bottom SCC is an end component, hence inside some MEC."""
        graph = graph_of(ctmdp)
        scc = strongly_connected_components(graph)
        mec_members = [set(mec.states.tolist()) for mec in maximal_end_components(graph)]
        for c in bottom_components(graph, scc):
            members = set(scc.members(c).tolist())
            if graph.deadlocks[list(members)].all():
                continue  # a deadlock singleton circulates nothing
            assert any(members <= mec for mec in mec_members), members

    @given(ctmdp=random_uniform_ctmdps())
    @settings(max_examples=40, deadline=None)
    def test_single_action_oracle(self, ctmdp):
        """On an induced CTMC (one action per state) the MECs are exactly
        the bottom SCCs that carry at least one edge."""
        chain = ctmdp.induced_ctmc(np.zeros(ctmdp.num_states, dtype=np.int64))
        graph = graph_of(chain)
        scc = strongly_connected_components(graph)
        expected = set()
        for c in bottom_components(graph, scc):
            members = scc.members(c)
            if not graph.deadlocks[members].all():
                expected.add(frozenset(members.tolist()))
        mecs = maximal_end_components(graph)
        assert {frozenset(mec.states.tolist()) for mec in mecs} == expected
        assert all(mec.closed for mec in mecs)
