"""Validation of the tightened small-``lam`` right truncation.

The classical finder evaluates the right-tail bound at ``max(lam, 400)``
which inflates the window of small parameters by an order of magnitude
(e.g. ~87 retained indices for ``lam = 0.1``).  The direct pmf walk
keeps the retained mass guarantee -- validated here against
``scipy.stats.poisson`` across the parameter range -- while shrinking
small windows drastically and leaving the ``lam >= 400`` regime of the
paper's Table 1 untouched.
"""

import math

import numpy as np
import pytest
from scipy import stats

from repro.numerics.foxglynn import fox_glynn, poisson_right_truncation

LAMBDAS = [0.1, 1.0, 10.0, 24.9, 25.0, 100.0, 400.0, 4000.0]
EPSILONS = [1e-3, 1e-6, 1e-10]


class TestRetainedMass:
    @pytest.mark.parametrize("lam", LAMBDAS)
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_window_mass_at_least_one_minus_epsilon(self, lam, epsilon):
        """The defining contract: the true Poisson mass inside
        ``[left, right]`` is at least ``1 - epsilon``."""
        fg = fox_glynn(lam, epsilon)
        mass = stats.poisson.cdf(fg.right, lam) - (
            stats.poisson.cdf(fg.left - 1, lam) if fg.left > 0 else 0.0
        )
        assert mass >= 1.0 - epsilon

    @pytest.mark.parametrize("lam", LAMBDAS)
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_weights_match_scipy_pointwise(self, lam, epsilon):
        """Below 25 the weights are the exact pmf; above, normalisation
        by the window sum introduces a relative error of the order of
        the truncated mass (<= epsilon)."""
        fg = fox_glynn(lam, epsilon)
        indices = np.arange(fg.left, fg.right + 1)
        reference = stats.poisson.pmf(indices, lam)
        rtol = 1e-10 if lam < 25.0 else max(10.0 * epsilon, 1e-10)
        np.testing.assert_allclose(fg.probabilities(), reference, atol=1e-12, rtol=rtol)

    @pytest.mark.parametrize("lam", LAMBDAS)
    def test_normalised_sum_close_to_one(self, lam):
        fg = fox_glynn(lam, 1e-8)
        assert abs(float(np.sum(fg.probabilities())) - 1.0) < 1e-8


class TestWindowShape:
    @pytest.mark.parametrize("lam", [0.1, 1.0, 10.0, 24.9, 100.0, 399.0])
    def test_small_lambda_window_is_tighter_than_classical_formula(self, lam):
        """The whole point of the change: the direct walk beats the
        ``sqrt(2 * max(lam, 400))`` overshoot for every ``lam < 400``."""
        from repro.numerics.foxglynn import _right_tail_k

        classical = int(
            math.ceil(math.floor(lam) + _right_tail_k(400.0, 1e-6) * math.sqrt(800.0) + 1.5)
        )
        assert fox_glynn(lam, 1e-6).right < classical

    @pytest.mark.parametrize("lam", LAMBDAS)
    def test_tighter_epsilon_never_shrinks_the_window(self, lam):
        coarse = fox_glynn(lam, 1e-4)
        fine = fox_glynn(lam, 1e-12)
        assert fine.right >= coarse.right
        assert fine.left <= coarse.left

    def test_right_never_below_mode(self):
        for lam in LAMBDAS:
            assert fox_glynn(lam, 1e-6).right >= int(math.floor(lam))

    def test_mode_weight_is_retained_maximum(self):
        """The retained maximum sits at the distribution's mode (integer
        parameters have two modes, floor(lam) and floor(lam) - 1)."""
        for lam in LAMBDAS:
            fg = fox_glynn(lam, 1e-8)
            mode = int(math.floor(lam))
            assert abs(int(fg.probabilities().argmax()) + fg.left - mode) <= 1


class TestTable1Regime:
    """The paper's iteration counts live in the ``lam >= 400`` branch,
    which the small-``lam`` walk must not perturb."""

    def test_30000h_iteration_count_unchanged(self):
        """N=1: E = 2.0 + 2*0.002 + 2*0.00025 + 0.0002 per hour, so the
        30000 h bound gives lam ~ 6e4; Table 1 reports 62161 iterations
        at epsilon = 1e-6 and the classical finder stays within 2%."""
        rate = 2.0 + 2 * 0.002 + 2 * 0.00025 + 0.0002
        count = poisson_right_truncation(rate * 30000.0, 1e-6)
        assert abs(count - 62161) / 62161 < 0.02

    def test_above_400_uses_classical_finder(self):
        """At lam >= 400 the right point still follows the corollary
        formula ``mode + k sqrt(2 lam) + 3/2`` for some integer k >= 3."""
        for lam in (400.0, 4000.0):
            right = fox_glynn(lam, 1e-6).right
            mode = int(math.floor(lam))
            k = (right - 1.5 - mode) / math.sqrt(2.0 * lam)
            assert k >= 2.9

    def test_100h_iteration_count_drops_below_classical(self):
        """At N=1, 100 h (lam ~ 200) the old finder reported ~340+
        iterations; the direct walk cuts that meaningfully while the
        values stay anchored (see test_reachability_ftwc_regression)."""
        lam = (2.0 + 2 * 0.002 + 2 * 0.00025 + 0.0002) * 100.0
        count = poisson_right_truncation(lam, 1e-6)
        assert count < 340
        assert count > lam  # still beyond the mode
