"""Fox-Glynn edge cases, cross-checked against scipy's Poisson pmf.

The engine hands the Fox-Glynn finder/weighter parameters from opposite
ends of the spectrum: a query at ``t`` just above zero on a slow model
gives ``lam = E*t < 1``, while the paper's 30000 h bound on the FTWC
(``E ~ 2``) gives ``lam`` in the tens of thousands; N=128 pushes it
towards ``4e5``.  These tests pin down the behaviour at those extremes
and at epsilon near machine precision.
"""

import math

import numpy as np
import pytest
from scipy.stats import poisson

from repro.numerics.foxglynn import fox_glynn, poisson_right_truncation


def assert_matches_scipy(lam, epsilon, atol):
    """Weights normalised by the total must match scipy's pmf pointwise."""
    result = fox_glynn(lam, epsilon)
    indices = np.arange(result.left, result.right + 1)
    reference = poisson.pmf(indices, lam)
    np.testing.assert_allclose(result.probabilities(), reference, atol=atol)
    # The neglected mass really is below epsilon.
    neglected = poisson.cdf(result.left - 1, lam) + poisson.sf(result.right, lam)
    assert neglected <= epsilon


class TestSmallParameter:
    @pytest.mark.parametrize("lam", [0.3, 0.9, 1.0 - 1e-12])
    def test_lam_below_one(self, lam):
        assert_matches_scipy(lam, 1e-3, atol=1e-12)

    def test_mode_zero_window_starts_at_zero(self):
        result = fox_glynn(0.3, 1e-3)
        assert result.left == 0
        # Mass at zero dominates: e^{-0.3} ~ 0.74.
        assert result.probability(0) == pytest.approx(math.exp(-0.3), abs=1e-12)

    def test_tiny_lam_tight_epsilon(self):
        assert_matches_scipy(1e-6, 1e-10, atol=1e-15)

    def test_zero_lam_degenerate(self):
        result = fox_glynn(0.0)
        assert (result.left, result.right) == (0, 0)
        assert result.probability(0) == 1.0


class TestLargeParameter:
    @pytest.mark.parametrize("lam", [4.0e5, 6.3e5])
    def test_lam_in_the_hundreds_of_thousands(self, lam):
        # N=128 at t=30000 h in Table 1 lands in this regime.
        result = fox_glynn(lam, 1e-6)
        assert result.left > 0  # the left tail really is truncated
        assert result.left < lam < result.right
        # Window width grows like sqrt(lam), not lam.
        assert len(result) < 20.0 * math.sqrt(lam)
        indices = np.arange(result.left, result.right + 1)
        # The two-sided recurrence spans ~10^4 multiplications here, so
        # allow a few ulps of accumulated relative error per step.
        np.testing.assert_allclose(
            result.probabilities(), poisson.pmf(indices, lam), rtol=1e-6, atol=1e-15
        )

    def test_truncation_point_bounds_the_tail(self):
        for lam in (1.0e3, 1.0e5, 4.0e5):
            right = poisson_right_truncation(lam, 1e-6)
            assert poisson.sf(right, lam) <= 1e-6

    def test_large_lam_weights_are_finite_and_normalised(self):
        result = fox_glynn(4.0e5, 1e-6)
        assert np.isfinite(result.weights).all()
        assert result.probabilities().sum() == pytest.approx(1.0, abs=1e-6)


class TestTightEpsilon:
    @pytest.mark.parametrize("lam", [0.5, 40.0, 2000.0])
    def test_epsilon_near_machine_precision(self, lam):
        assert_matches_scipy(lam, 1e-15, atol=1e-12)

    def test_tighter_epsilon_never_shrinks_the_window(self):
        for lam in (0.5, 40.0, 2000.0):
            loose = fox_glynn(lam, 1e-4)
            tight = fox_glynn(lam, 1e-15)
            assert tight.left <= loose.left
            assert tight.right >= loose.right

    def test_iteration_counts_match_paper_regime(self):
        # Sanity anchor: the paper's 62161 iterations for N=1 at 30000 h
        # correspond to lam = E * t with E ~ 2.058; the truncation point
        # must sit a few sigma beyond lam.
        lam = 2.058 * 30000.0
        right = poisson_right_truncation(lam, 1e-6)
        assert lam < right < lam + 10.0 * math.sqrt(lam)
