"""Tests for the Fox-Glynn Poisson weighter and finder."""

import math

import numpy as np
import pytest
import scipy.stats
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NumericalError
from repro.numerics.foxglynn import (
    fox_glynn,
    poisson_pmf,
    poisson_right_truncation,
)


class TestFinder:
    def test_zero_parameter_is_degenerate(self):
        fg = fox_glynn(0.0)
        assert fg.left == 0
        assert fg.right == 0
        assert fg.probability(0) == 1.0

    def test_small_parameter_left_is_zero(self):
        fg = fox_glynn(5.0, 1e-6)
        assert fg.left == 0

    def test_large_parameter_truncates_left(self):
        fg = fox_glynn(10_000.0, 1e-6)
        assert fg.left > 0
        assert fg.left < 10_000 < fg.right

    def test_right_truncation_contains_needed_mass(self):
        for lam in (0.5, 5.0, 50.0, 500.0, 5000.0):
            fg = fox_glynn(lam, 1e-6)
            tail = 1.0 - scipy.stats.poisson.cdf(fg.right, lam)
            assert tail < 1e-6

    def test_left_truncation_drops_little_mass(self):
        for lam in (50.0, 500.0, 5000.0):
            fg = fox_glynn(lam, 1e-6)
            head = scipy.stats.poisson.cdf(fg.left - 1, lam) if fg.left else 0.0
            assert head < 1e-6

    def test_window_covers_mode(self):
        for lam in (0.1, 1.0, 7.3, 123.4):
            fg = fox_glynn(lam)
            assert fg.left <= int(lam) <= fg.right

    def test_truncation_point_grows_with_lambda(self):
        ks = [poisson_right_truncation(lam) for lam in (10.0, 100.0, 1000.0)]
        assert ks == sorted(ks)
        # Asymptotically k ~ lam + O(sqrt(lam)).
        assert ks[2] < 1000 + 40 * math.sqrt(1000)


class TestWeights:
    @pytest.mark.parametrize("lam", [0.3, 1.0, 4.5, 25.0, 130.7, 4000.0])
    def test_matches_scipy_pmf(self, lam):
        fg = fox_glynn(lam, 1e-10)
        indices = np.arange(fg.left, fg.right + 1)
        expected = scipy.stats.poisson.pmf(indices, lam)
        np.testing.assert_allclose(fg.probabilities(), expected, rtol=1e-8, atol=1e-13)

    @pytest.mark.parametrize("lam", [0.5, 10.0, 300.0])
    def test_probabilities_sum_close_to_one(self, lam):
        fg = fox_glynn(lam, 1e-8)
        assert abs(fg.probabilities().sum() - 1.0) < 1e-12

    def test_probability_outside_window_is_zero(self):
        fg = fox_glynn(100.0, 1e-6)
        assert fg.probability(fg.left - 1) == 0.0
        assert fg.probability(fg.right + 1) == 0.0

    def test_len_matches_window(self):
        fg = fox_glynn(42.0)
        assert len(fg) == fg.right - fg.left + 1 == len(fg.weights)

    @given(lam=st.floats(min_value=0.01, max_value=2000.0), i=st.integers(0, 50))
    @settings(max_examples=60, deadline=None)
    def test_probability_bounded(self, lam, i):
        fg = fox_glynn(lam)
        assert 0.0 <= fg.probability(i) <= 1.0


class TestDirectPmf:
    @pytest.mark.parametrize("lam", [0.0, 0.7, 3.0, 80.0])
    def test_matches_scipy(self, lam):
        for i in (0, 1, 5, 100):
            assert poisson_pmf(i, lam) == pytest.approx(
                float(scipy.stats.poisson.pmf(i, lam)), rel=1e-10, abs=1e-300
            )

    def test_negative_index_is_zero(self):
        assert poisson_pmf(-1, 3.0) == 0.0


class TestErrors:
    def test_negative_lambda_rejected(self):
        with pytest.raises(NumericalError):
            fox_glynn(-1.0)

    def test_nan_lambda_rejected(self):
        with pytest.raises(NumericalError):
            fox_glynn(float("nan"))

    @pytest.mark.parametrize("eps", [0.0, 1.0, -0.5, 2.0])
    def test_bad_epsilon_rejected(self, eps):
        with pytest.raises(NumericalError):
            fox_glynn(10.0, eps)


class TestExtremeParameters:
    def test_very_large_lambda(self):
        """The paper's longest horizon at large N gives lambda ~ 7.8e4;
        stress an order of magnitude beyond."""
        lam = 1.0e6
        fg = fox_glynn(lam, 1e-6)
        assert fg.left < lam < fg.right
        assert abs(fg.probabilities().sum() - 1.0) < 1e-10
        # Window width is O(sqrt(lambda)), not O(lambda).
        assert (fg.right - fg.left) < 40 * math.sqrt(lam)

    def test_probabilities_positive_across_window(self):
        fg = fox_glynn(50_000.0, 1e-6)
        assert (fg.probabilities() > 0.0).all()

    def test_tiny_epsilon(self):
        fg = fox_glynn(100.0, 1e-14)
        assert abs(fg.probabilities().sum() - 1.0) < 1e-12
