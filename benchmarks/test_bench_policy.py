"""Benchmark: the policy subsystem's three claims.

* **Compression** -- the streaming run-length/delta store must hold the
  FTWC N=4, t=100 scheduler (and a synthetic ~62k-step policy) at least
  10x smaller than the dense ``iterations x states`` int32 matrix.
* **Streaming overhead** -- recording through the compressed writer
  must add less than 10% wall time over the dense recorder it replaced
  (computing the per-step argbest is the cost of extraction itself and
  is paid by both formats; the ledger records the plain-solve overhead
  too, for the series).
* **Replay fidelity** -- fixing the stored scheduler and replaying the
  induced chain must reproduce the solver's probability within the
  solver's epsilon, under a healthy certificate.

Every run appends compression ratios and replay throughput to the
``BENCH_policy.json`` ledger in the repository root (git commit +
timestamp), so the series shows regressions rather than one snapshot.
"""

import time
from pathlib import Path

import numpy as np

from _ledger import append_run
from repro.core.reachability import (
    PreparedTimedReachability,
    replay_step_scheduler,
)
from repro.models import ftwc_direct
from repro.policy.store import PolicyWriter

N = 4
T = 100.0
EPSILON = 1e-6
MIN_RATIO = 10.0
RELATIVE_BUDGET = 0.10  # recording may cost at most 10% wall time
ABSOLUTE_SLACK = 0.05  # seconds, absorbs timer noise on tiny solves
REPEATS = 3

SYNTHETIC_ROWS = 62_000
SYNTHETIC_STATES = 96


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _prepared():
    model = ftwc_direct.build_ctmdp(N)
    return model, PreparedTimedReachability(model.ctmdp, model.goal_mask)


def test_policy_pipeline_end_to_end():
    model, prepared = _prepared()

    plain_seconds, plain = _best_of(lambda: prepared.solve(T, epsilon=EPSILON))
    dense_seconds, dense = _best_of(
        lambda: prepared.solve(
            T, epsilon=EPSILON, record_scheduler=True, scheduler_format="dense"
        )
    )
    recorded_seconds, recorded = _best_of(
        lambda: prepared.solve(T, epsilon=EPSILON, record_scheduler=True)
    )
    assert np.array_equal(plain.values, recorded.values)
    assert np.array_equal(recorded.decisions.dense(), dense.decisions)

    # --- Compression: FTWC N=4, t=100. ---------------------------------
    decisions = recorded.decisions
    ftwc_ratio = decisions.compression_ratio
    assert ftwc_ratio >= MIN_RATIO, (
        f"FTWC compression ratio {ftwc_ratio:.1f} below {MIN_RATIO}"
    )

    # --- Streaming overhead vs the dense recorder. ---------------------
    overhead = recorded_seconds / dense_seconds if dense_seconds > 0 else 1.0
    extraction_overhead = recorded_seconds / plain_seconds if plain_seconds > 0 else 1.0
    assert recorded_seconds <= dense_seconds * (1.0 + RELATIVE_BUDGET) + ABSOLUTE_SLACK, (
        f"streaming overhead {overhead - 1.0:+.1%} over the dense recorder "
        f"exceeds {RELATIVE_BUDGET:.0%}"
    )

    # --- Replay fidelity (induced chain). ------------------------------
    replay_seconds, replay = _best_of(
        lambda: replay_step_scheduler(
            model.ctmdp, model.goal_mask, T, decisions, epsilon=EPSILON
        ),
        repeats=1,
    )
    deviation = abs(
        replay.value(model.ctmdp.initial) - recorded.value(model.ctmdp.initial)
    )
    assert deviation <= EPSILON
    assert replay.certificate is not None and replay.certificate.healthy
    rows, states = decisions.shape
    replay_cells_per_second = (rows * states) / replay_seconds

    # --- Synthetic ~62k-step policy through the streaming writer. ------
    writer = PolicyWriter(num_states=SYNTHETIC_STATES)
    row = np.zeros(SYNTHETIC_STATES, dtype=np.int32)
    started = time.perf_counter()
    for index in range(SYNTHETIC_ROWS):
        if index % 500 == 0:  # sparse decision switches, like real policies
            row[(index // 500) % SYNTHETIC_STATES] += 1
        writer.append(row)
    write_seconds = time.perf_counter() - started
    synthetic = writer.finish()
    synthetic_ratio = synthetic.compression_ratio
    assert synthetic_ratio >= MIN_RATIO
    assert len(synthetic) == SYNTHETIC_ROWS
    write_cells_per_second = (SYNTHETIC_ROWS * SYNTHETIC_STATES) / write_seconds

    out = Path(__file__).resolve().parent.parent / "BENCH_policy.json"
    payload = {
        "workload": {
            "family": "ftwc",
            "n": N,
            "t_hours": T,
            "epsilon": EPSILON,
            "states": prepared.num_states,
            "iterations": int(recorded.iterations),
        },
        "ftwc": {
            "compression_ratio": ftwc_ratio,
            "compressed_bytes": decisions.nbytes,
            "dense_bytes": decisions.dense_nbytes,
            "plain_solve_seconds": plain_seconds,
            "dense_recorded_seconds": dense_seconds,
            "recorded_solve_seconds": recorded_seconds,
            "streaming_vs_dense_ratio": overhead,
            "extraction_vs_plain_ratio": extraction_overhead,
            "replay_seconds": replay_seconds,
            "replay_cells_per_second": replay_cells_per_second,
            "replay_deviation": deviation,
            "replay_certificate_status": replay.certificate.status,
        },
        "synthetic": {
            "rows": SYNTHETIC_ROWS,
            "states": SYNTHETIC_STATES,
            "compression_ratio": synthetic_ratio,
            "compressed_bytes": synthetic.nbytes,
            "dense_bytes": synthetic.dense_nbytes,
            "write_seconds": write_seconds,
            "write_cells_per_second": write_cells_per_second,
        },
        "budget": {
            "min_compression_ratio": MIN_RATIO,
            "relative_overhead": RELATIVE_BUDGET,
            "absolute_slack": ABSOLUTE_SLACK,
        },
        "repeats": REPEATS,
        "timing": "min over repeats",
    }
    append_run(out, "policy-artifacts", payload)
    print(
        f"\nFTWC N={N} t={T:g}: ratio {ftwc_ratio:.1f}x "
        f"({decisions.nbytes} vs {decisions.dense_nbytes} B), "
        f"streaming vs dense {overhead - 1.0:+.1%}, "
        f"extraction vs plain {extraction_overhead - 1.0:+.1%}, "
        f"replay {replay_cells_per_second:,.0f} cells/s, "
        f"deviation {deviation:.2e}; "
        f"synthetic {SYNTHETIC_ROWS} rows: ratio {synthetic_ratio:.1f}x"
    )
