"""Scrape latency of the HTTP telemetry endpoint.

Populates an engine's metric store with a realistic workload (a small
FTWC batch, so counters, gauges and certificate histograms are all
present), starts a :class:`~repro.obs.http.TelemetryServer`, and times
repeated ``GET /metrics`` scrapes over loopback.  The exposition must
stay cheap enough that a 1-second Prometheus scrape interval is
comfortably idle, and every response must be a well-formed exposition.

Appends the measurements to the ``BENCH_http.json`` ledger.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_http.py``.
"""

import time
import urllib.request
from pathlib import Path

import pytest

from _ledger import append_run
from repro.engine.plan import Query
from repro.engine.solver import QueryEngine
from repro.obs.http import PROMETHEUS_CONTENT_TYPE, TelemetryServer

SCRAPES = 50

#: Per-scrape budget, generous for a loopback round-trip of a few KiB of
#: text on a loaded CI box.
SCRAPE_BUDGET_SECONDS = 0.25


@pytest.fixture(scope="module")
def engine():
    engine = QueryEngine()
    batch = engine.run(
        [
            Query(
                model={"family": "ftwc", "n": 1},
                t=t,
                epsilon=1e-6,
                goal="no_premium",
                objective="max",
            )
            for t in (10.0, 50.0, 100.0)
        ]
    )
    assert batch.num_failed == 0
    return engine


def test_metrics_scrape_latency(engine):
    durations = []
    with TelemetryServer(engine.metrics) as server:
        url = f"{server.url}/metrics"
        # Warm-up: socket setup, handler import paths.
        urllib.request.urlopen(url).read()
        for _ in range(SCRAPES):
            started = time.perf_counter()
            with urllib.request.urlopen(url) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers["Content-Type"]
            durations.append(time.perf_counter() - started)
            assert content_type == PROMETHEUS_CONTENT_TYPE
            assert body.endswith("# EOF\n")
            assert "repro_queries_total_total 3" in body
            assert "repro_certificates_total_total 3" in body

    durations.sort()
    p50 = durations[len(durations) // 2]
    p99 = durations[min(len(durations) - 1, int(len(durations) * 0.99))]
    assert p99 <= SCRAPE_BUDGET_SECONDS, (
        f"/metrics p99 scrape latency {p99 * 1e3:.2f} ms exceeds budget "
        f"{SCRAPE_BUDGET_SECONDS * 1e3:.0f} ms"
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_http.json"
    append_run(
        out,
        "http-metrics-scrape",
        {
            "scrapes": SCRAPES,
            "exposition_bytes": len(body.encode("utf-8")),
            "min_seconds": durations[0],
            "p50_seconds": p50,
            "p99_seconds": p99,
            "budget_seconds": SCRAPE_BUDGET_SECONDS,
        },
    )
