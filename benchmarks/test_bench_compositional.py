"""Benchmark: the compositional route (Section 5 "Technicalities").

The paper builds the FTWC compositionally with CADP up to N=14 (with a
5e6-state intermediate space) and reports that composition plus
minimisation dominates the cost.  This benchmark exercises our pure-
Python version of that trajectory -- elapse constraints, parallel
composition, hiding, stochastic branching bisimulation minimisation,
strictly-alternating transformation -- for the sizes Python handles
comfortably, and verifies the headline agreement with the direct
generator.
"""

import pytest

from repro.core.reachability import timed_reachability
from repro.models.ftwc import build_compositional, build_system_imc
from repro.models.ftwc_direct import build_ctmdp


@pytest.mark.parametrize("n", (1, 2))
def test_compositional_build(benchmark, n):
    system = benchmark.pedantic(
        build_compositional, args=(n,), rounds=1, iterations=1
    )
    assert system.ctmdp.is_uniform(tol=1e-6)
    benchmark.extra_info["ctmdp_states"] = system.ctmdp.num_states
    benchmark.extra_info["ctmdp_transitions"] = system.ctmdp.num_transitions

    direct = build_ctmdp(n)
    value_comp = timed_reachability(
        system.ctmdp, system.goal_mask, 100.0, epsilon=1e-8
    ).value(system.ctmdp.initial)
    value_direct = timed_reachability(
        direct.ctmdp, direct.goal_mask, 100.0, epsilon=1e-8
    ).value(direct.ctmdp.initial)
    assert value_comp == pytest.approx(value_direct, rel=1e-6)
    benchmark.extra_info["p_100h"] = value_comp


def test_minimisation_ablation(benchmark):
    """Without intermediate minimisation the intermediate state spaces
    are larger and the final signature-refinement fixpoint may end up
    finer (it is a valid bisimulation either way); the analysis results
    agree exactly."""

    def build_fat():
        return build_compositional(1, minimize_intermediate=False)

    fat = benchmark.pedantic(build_fat, rounds=1, iterations=1)
    slim = build_compositional(1, minimize_intermediate=True)
    assert fat.ctmdp.num_states >= slim.ctmdp.num_states
    value_fat = timed_reachability(fat.ctmdp, fat.goal_mask, 100.0, epsilon=1e-8).value(
        fat.ctmdp.initial
    )
    value_slim = timed_reachability(
        slim.ctmdp, slim.goal_mask, 100.0, epsilon=1e-8
    ).value(slim.ctmdp.initial)
    assert value_fat == pytest.approx(value_slim, rel=1e-6)
    benchmark.extra_info["states_without_intermediate_min"] = fat.ctmdp.num_states
    benchmark.extra_info["states_with_intermediate_min"] = slim.ctmdp.num_states
