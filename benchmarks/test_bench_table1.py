"""Benchmark: Table 1 -- model generation, transformation and analysis.

Regenerates the measured columns of Table 1: state/transition counts and
memory of the strictly alternating representation, generation time per
``N``, and timed-reachability runtime and iteration counts per time
bound at precision 1e-6.

The paper's most expensive cell (N=128, t=30000 h) took 20867 s on the
authors' Java prototype; a pure-Python rerun of that cell is measured in
days and is therefore not part of the default benchmark run -- the
iteration count it would take is still reported exactly (it only depends
on ``E * t``), see ``repro.analysis.experiments.run_table1``.  Pass
larger ``N`` through the CLI (``repro table1 --ns 64 128``) for the
full-size model-construction columns.
"""

import pytest

from repro.analysis.stats import ctmdp_alternating_statistics
from repro.analysis.experiments import PAPER_TABLE1
from repro.core.reachability import timed_reachability
from repro.models.ftwc_direct import build_ctmdp
from repro.numerics.foxglynn import poisson_right_truncation

GENERATION_SIZES = (1, 2, 4, 8, 16, 32)
ANALYSIS_SIZES = (1, 4, 16)


@pytest.mark.parametrize("n", GENERATION_SIZES)
def test_generate_ftwc_ctmdp(benchmark, n):
    """Column 'Transf. time': building the uCTMDP for each N."""
    model = benchmark(build_ctmdp, n)
    stats = ctmdp_alternating_statistics(model.ctmdp)
    # Structural reproduction check against the paper's Table 1.
    if n in PAPER_TABLE1:
        assert stats.markov_states == PAPER_TABLE1[n][1]
        assert abs(stats.interactive_states - PAPER_TABLE1[n][0]) <= 1
    benchmark.extra_info.update(stats.as_row())


@pytest.mark.parametrize("n", ANALYSIS_SIZES)
def test_reachability_100h(benchmark, n):
    """Column 'Runtime 100 h': Algorithm 1 at the short horizon."""
    model = build_ctmdp(n)

    def solve():
        return timed_reachability(model.ctmdp, model.goal_mask, 100.0, epsilon=1e-6)

    result = benchmark(solve)
    assert 0.0 < result.value(model.ctmdp.initial) < 1.0
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["probability"] = result.value(model.ctmdp.initial)


@pytest.mark.parametrize("n", (1, 4))
def test_reachability_1000h(benchmark, n):
    """Longer horizon: runtime scales linearly in the iteration count."""
    model = build_ctmdp(n)

    def solve():
        return timed_reachability(model.ctmdp, model.goal_mask, 1000.0, epsilon=1e-6)

    result = benchmark.pedantic(solve, rounds=3, iterations=1)
    benchmark.extra_info["iterations"] = result.iterations


def test_iteration_counts_30000h_reported():
    """Column '# Iterations 30000 h': exact predictions for every N.

    These agree with the paper's numbers up to the difference in the
    Fox-Glynn truncation bound (ours is a few hundred iterations
    tighter at lambda ~ 6e4).
    """
    for n, paper in PAPER_TABLE1.items():
        model_rate = 2.0 + 2 * n * 0.002 + 2 * 0.00025 + 0.0002
        ours = poisson_right_truncation(model_rate * 30000.0, 1e-6)
        assert abs(ours - paper[5]) / paper[5] < 0.02  # within 2 percent
