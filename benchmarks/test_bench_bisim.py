"""Benchmark: bisimulation machinery.

The compositional route's cost is dominated by composition plus
minimisation (the paper leans on CADP's highly tuned BCG_MIN); these
benchmarks isolate our partition-refinement implementations on the FTWC
composition products and on the CTMDP quotient.
"""

import pytest

from repro.bisim.branching import branching_bisimulation, branching_minimize
from repro.bisim.ctmdp_bisim import ctmdp_minimize
from repro.bisim.strong import strong_bisimulation
from repro.models.ftwc import build_system_imc
from repro.models.ftwc_direct import build_ctmdp
from repro.models.job_scheduling import build_job_scheduling


@pytest.fixture(scope="module")
def raw_ftwc_imc():
    """The unminimised closed FTWC composition for N=1."""
    return build_system_imc(1, minimize_intermediate=False)


def test_branching_bisimulation_ftwc(benchmark, raw_ftwc_imc):
    partition = benchmark(branching_bisimulation, raw_ftwc_imc.imc)
    benchmark.extra_info["blocks"] = partition.num_blocks
    benchmark.extra_info["states"] = raw_ftwc_imc.imc.num_states


def test_strong_bisimulation_ftwc(benchmark, raw_ftwc_imc):
    partition = benchmark(strong_bisimulation, raw_ftwc_imc.imc)
    benchmark.extra_info["blocks"] = partition.num_blocks


def test_branching_minimize_with_labels(benchmark, raw_ftwc_imc):
    def run():
        return branching_minimize(
            raw_ftwc_imc.imc, labels=raw_ftwc_imc.premium_flags
        )

    quotient, _ = benchmark(run)
    benchmark.extra_info["quotient_states"] = quotient.num_states


def test_ctmdp_minimize_symmetric_jobs(benchmark):
    model = build_job_scheduling([1.0] * 6, processors=2)

    def run():
        return ctmdp_minimize(
            model.ctmdp, labels=model.goal_mask.tolist(), respect_actions=False
        )

    quotient, _ = benchmark.pedantic(run, rounds=3, iterations=1)
    # Six symmetric jobs collapse to a seven-state counter chain.
    assert quotient.num_states == 7
    benchmark.extra_info["states"] = model.ctmdp.num_states
    benchmark.extra_info["quotient_states"] = quotient.num_states


def test_ctmdp_minimize_ftwc(benchmark):
    model = build_ctmdp(4)

    def run():
        return ctmdp_minimize(model.ctmdp, labels=model.goal_mask.tolist())

    quotient, _ = benchmark.pedantic(run, rounds=3, iterations=1)
    benchmark.extra_info["states"] = model.ctmdp.num_states
    benchmark.extra_info["quotient_states"] = quotient.num_states
