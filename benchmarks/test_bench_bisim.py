"""Benchmark: worklist vs naive branching-bisimulation refinement.

The compositional FTWC route spends most of its time in repeated
branching-bisimulation quotients (``repro profile`` attributed ~80% of
the build to the naive signature engine before the worklist engine
existed).  This benchmark replays exactly that workload: it records
every ``(model, labels)`` pair the N=3 compositional build passes to
the refinement, then times both engines over the recorded sequence --
isolating refinement from composition and quotient construction, which
the two engines share.

Every run appends wall times and the speedup to the
``BENCH_bisim.json`` ledger in the repository root (git commit + UTC
timestamp), so the series shows regressions rather than one snapshot.
The engines' partitions are asserted equal on every recorded model.
"""

import time
from pathlib import Path

import numpy as np
from _ledger import append_run

import repro.bisim.branching as branching
from repro.models.ftwc import build_system_imc

N = 3
WORKLIST_REPEATS = 3
NAIVE_REPEATS = 2
#: Soft floor asserted here; the acceptance series in the ledger shows
#: the actual ratio (>= 3x on this workload).
MIN_SPEEDUP = 2.0


def _record_minimisation_workload():
    """The (model, labels) pairs minimised by the N=3 compositional build."""
    recorded = []
    original = branching.branching_bisimulation

    def recording(imc, labels=None, engine="worklist", metrics=None):
        recorded.append((imc, list(labels) if labels is not None else None))
        return original(imc, labels, engine=engine, metrics=metrics)

    branching.branching_bisimulation = recording
    try:
        build_system_imc(N, minimize_intermediate=True, engine="worklist")
    finally:
        branching.branching_bisimulation = original
    return recorded


def _time_engine(workload, engine, repeats):
    best = float("inf")
    partitions = None
    for _ in range(repeats):
        started = time.perf_counter()
        partitions = [
            branching.branching_bisimulation(imc, labels, engine=engine)
            for imc, labels in workload
        ]
        best = min(best, time.perf_counter() - started)
    return best, partitions


def test_worklist_speedup_on_ftwc_minimisation():
    workload = _record_minimisation_workload()
    sizes = [imc.num_states for imc, _ in workload]

    worklist_seconds, worklist_parts = _time_engine(
        workload, "worklist", WORKLIST_REPEATS
    )
    naive_seconds, naive_parts = _time_engine(workload, "naive", NAIVE_REPEATS)

    # Correctness first: both engines compute the identical partitions.
    for left, right in zip(worklist_parts, naive_parts):
        np.testing.assert_array_equal(left.block_of, right.block_of)

    speedup = naive_seconds / worklist_seconds if worklist_seconds else float("inf")
    out = Path(__file__).resolve().parent.parent / "BENCH_bisim.json"
    append_run(
        out,
        "bisim-worklist-refinement",
        {
            "workload": {
                "family": "ftwc-compositional",
                "n": N,
                "minimisations": len(workload),
                "model_sizes": sizes,
            },
            "worklist_seconds": round(worklist_seconds, 6),
            "naive_seconds": round(naive_seconds, 6),
            "speedup": round(speedup, 3),
            "partitions_equal": True,
        },
    )
    print(
        f"\nFTWC N={N} compositional minimisation ({len(workload)} quotients, "
        f"largest {max(sizes)} states): worklist {worklist_seconds:.3f} s, "
        f"naive {naive_seconds:.3f} s ({speedup:.2f}x)"
    )
    assert speedup >= MIN_SPEEDUP, (
        f"worklist engine only {speedup:.2f}x faster than the naive engine "
        f"(expected >= {MIN_SPEEDUP}x on the FTWC minimisation workload)"
    )
