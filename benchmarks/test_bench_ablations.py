"""Ablation benchmarks for the design choices called out in DESIGN.md.

* sparse versus dense value iteration (the paper stores the transition
  relation "as sparse matrices"; this quantifies why);
* uniform-by-construction versus uniformization after the fact (a larger
  uniform rate costs proportionally more iterations -- the reason the
  shared rate-2 repair clock matters: per-component always-on repair
  clocks would inflate E(128) from ~2.6 to ~514);
* Fox-Glynn versus naive Poisson summation.
"""

import numpy as np
import pytest

from repro.core.reachability import timed_reachability
from repro.core.uniformity import uniformize_ctmdp
from repro.models.ftwc_direct import build_ctmdp
from repro.numerics.foxglynn import fox_glynn, poisson_pmf


class TestSparseVsDense:
    N = 8
    T = 100.0

    def _dense_solve(self, model):
        """Reference dense implementation of Algorithm 1 (max)."""
        ctmdp = model.ctmdp
        rate = ctmdp.uniform_rate()
        fg = fox_glynn(rate * self.T, 1e-6)
        psi = fg.probabilities()
        prob = np.asarray(ctmdp.probability_matrix().todense())
        mask = model.goal_mask
        goal_vec = mask.astype(float)
        prob_goal = prob @ goal_vec
        counts = np.diff(ctmdp.choice_ptr)
        nonempty = counts > 0
        starts = ctmdp.choice_ptr[:-1][nonempty]
        q = np.zeros(ctmdp.num_states)
        for i in range(fg.right, 0, -1):
            psi_i = psi[i - fg.left] if i >= fg.left else 0.0
            values = psi_i * prob_goal + prob @ q
            new_q = np.zeros(ctmdp.num_states)
            new_q[nonempty] = np.maximum.reduceat(values, starts)
            new_q[mask] = psi_i + q[mask]
            q = new_q
        q[mask] = 1.0
        return q

    def test_sparse(self, benchmark):
        model = build_ctmdp(self.N)
        result = benchmark(
            timed_reachability, model.ctmdp, model.goal_mask, self.T, 1e-6
        )
        benchmark.extra_info["value"] = result.value(0)

    def test_dense(self, benchmark):
        model = build_ctmdp(self.N)
        values = benchmark(self._dense_solve, model)
        sparse = timed_reachability(model.ctmdp, model.goal_mask, self.T, epsilon=1e-6)
        np.testing.assert_allclose(values, sparse.values, atol=1e-9)


class TestUniformizationPadding:
    """Uniform-by-construction (E ~ 2) versus a padded clock (E ~ 20)."""

    def test_native_rate(self, benchmark):
        model = build_ctmdp(2)
        result = benchmark(
            timed_reachability, model.ctmdp, model.goal_mask, 100.0, 1e-6
        )
        benchmark.extra_info["iterations"] = result.iterations

    def test_padded_rate_10x(self, benchmark):
        model = build_ctmdp(2)
        padded = uniformize_ctmdp(model.ctmdp, rate=10.0 * model.ctmdp.uniform_rate())
        result = benchmark(timed_reachability, padded, model.goal_mask, 100.0, 1e-6)
        # Same probabilities, ~10x the iterations: the price of a big E.
        reference = timed_reachability(model.ctmdp, model.goal_mask, 100.0, epsilon=1e-6)
        np.testing.assert_allclose(result.values, reference.values, atol=1e-7)
        # The Poisson window scales with E t plus an O(sqrt(E t)) margin,
        # so 10x the rate gives clearly more -- but less than 10x more --
        # iterations at this small lambda.
        assert result.iterations > 4 * reference.iterations
        benchmark.extra_info["iterations"] = result.iterations


class TestFoxGlynn:
    LAM = 60_000.0  # the paper's 30000 h horizon at E ~ 2

    def test_fox_glynn(self, benchmark):
        fg = benchmark(fox_glynn, self.LAM, 1e-6)
        benchmark.extra_info["window"] = len(fg)

    def test_naive_summation(self, benchmark):
        """Direct pmf evaluation per index over the same window."""
        fg = fox_glynn(self.LAM, 1e-6)

        def naive():
            return [poisson_pmf(i, self.LAM) for i in range(fg.left, fg.right + 1)]

        values = benchmark.pedantic(naive, rounds=1, iterations=1)
        # Direct lgamma evaluation cancels ~6e5-sized exponents at this
        # lambda, so it is several digits less accurate than the
        # recurrence-based weighter -- part of why Fox-Glynn exists.
        np.testing.assert_allclose(values, fg.probabilities(), rtol=1e-4, atol=1e-12)
