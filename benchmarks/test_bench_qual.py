"""Benchmark: qualitative precomputation in the timed solver.

On the FTWC N=4 uCTMDP (819 states, 692 of them goal states) the
Prob0 sets are empty and the whole goal set folds into the scalar
recursion, so ``precompute=True`` sweeps only the 127 undecided states
-- same Poisson window, same iteration count, a fraction of the
matrix-vector work.  The claim under test:

* the clamped solve agrees with the plain solve within the solver
  epsilon (the sweeps are not bitwise-identical -- different summation
  order over the reduced sub-matrix);
* it eliminates a substantial share of the states and is not slower.

Every run appends wall times, the eliminated-state count and the
speedup to the ``BENCH_qual.json`` ledger in the repository root (git
commit + timestamp), so the series shows regressions rather than one
snapshot.
"""

import time
from pathlib import Path

from _ledger import append_run
from repro.core.reachability import PreparedTimedReachability
from repro.graph import analyze_model
from repro.models import ftwc_direct

N = 4
T = 100.0
EPSILON = 1e-6
REPEATS = 5


def _best_of(fn, repeats=REPEATS):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_precompute_speedup_on_ftwc():
    model = ftwc_direct.build_ctmdp(N)
    num_states = model.ctmdp.num_states

    plain_solver = PreparedTimedReachability(model.ctmdp, model.goal_mask)
    clamped_solver = PreparedTimedReachability(
        model.ctmdp, model.goal_mask, precompute=True
    )
    plain_seconds, plain = _best_of(
        lambda: plain_solver.solve(T, epsilon=EPSILON)
    )
    clamped_seconds, clamped = _best_of(
        lambda: clamped_solver.solve(T, epsilon=EPSILON)
    )

    analysis_started = time.perf_counter()
    analysis = analyze_model(model.ctmdp, goal=model.goal_mask)
    analysis_seconds = time.perf_counter() - analysis_started

    # Correctness: within epsilon, most of the model leaves the sweep.
    initial = model.ctmdp.initial
    assert abs(clamped.value(initial) - plain.value(initial)) < 1e-9
    assert clamped.iterations == plain.iterations
    assert clamped.states_eliminated == int(model.goal_mask.sum())
    assert clamped.states_eliminated >= num_states // 2
    assert clamped.certificate.healthy

    # Performance: sweeping a fraction of the states must not cost more
    # (generous bound; the ledger tracks the actual series).
    assert clamped_seconds <= plain_seconds * 1.5 + 0.05

    speedup = plain_seconds / clamped_seconds if clamped_seconds else float("inf")
    out = Path(__file__).resolve().parent.parent / "BENCH_qual.json"
    append_run(
        out,
        "qualitative-precompute",
        {
            "model": {"family": "ftwc", "n": N},
            "t": T,
            "epsilon": EPSILON,
            "states": num_states,
            "states_eliminated": int(clamped.states_eliminated),
            "iterations": int(clamped.iterations),
            "value": clamped.value(initial),
            "plain_seconds": round(plain_seconds, 6),
            "precompute_seconds": round(clamped_seconds, 6),
            "speedup": round(speedup, 3),
            "graph_analysis_seconds": round(analysis_seconds, 6),
            "qualitative": analysis.qualitative.counts(),
        },
    )
    print(
        f"\nFTWC N={N} t={T}: plain {plain_seconds*1e3:.1f} ms, "
        f"precompute {clamped_seconds*1e3:.1f} ms ({speedup:.2f}x, "
        f"{clamped.states_eliminated}/{num_states} states eliminated)"
    )
