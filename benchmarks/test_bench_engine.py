"""Benchmark: the analysis engine's two wins.

* **Registry, cold vs warm** -- building the FTWC uCTMDP for N=4 from
  scratch versus loading it from the engine's disk cache.  The warm
  path must skip construction entirely (``models_built`` absent from
  the counters) and still yield a bitwise-identical analysis.
* **Batched sweep vs independent calls** -- the 11-point Figure 4 time
  sweep answered through one engine batch (one build, one prepared
  solver, one Fox-Glynn per bound) versus 11 independent
  ``timed_reachability`` calls that each rebuild everything.  The
  values must agree bitwise: batching changes the cost of an analysis,
  never its outcome.
"""

import time

import pytest

from repro.core.reachability import timed_reachability
from repro.engine import ModelRegistry, Query, QueryEngine
from repro.models import ftwc_direct

SPEC = {"family": "ftwc", "n": 4}
TIME_POINTS = tuple(float(t) for t in range(0, 501, 50))  # 11 points


def test_registry_cold_vs_warm(benchmark, tmp_path):
    cold_registry = ModelRegistry(cache_dir=tmp_path)
    started = time.perf_counter()
    cold = cold_registry.get(SPEC)
    cold_seconds = time.perf_counter() - started
    assert cold.source == "build"

    def warm_lookup():
        return ModelRegistry(cache_dir=tmp_path).get(SPEC)

    warm = benchmark(warm_lookup)
    assert warm.source == "disk"

    reference = timed_reachability(cold.model, cold.goal_mask, 100.0)
    reloaded = timed_reachability(warm.model, warm.goal_mask, 100.0)
    assert reference.value(cold.model.initial) == reloaded.value(warm.model.initial)

    benchmark.extra_info["cold_build_seconds"] = cold_seconds
    benchmark.extra_info["states"] = cold.stats["states"]
    print(
        f"\ncold build {cold_seconds:.3f} s vs warm disk load "
        f"{benchmark.stats.stats.mean:.3f} s "
        f"({cold.stats['states']} states)"
    )


def test_batched_sweep_vs_independent_calls(benchmark):
    def independent_sweep():
        values = []
        for t in TIME_POINTS:
            model = ftwc_direct.build_ctmdp(4)
            values.append(
                timed_reachability(model.ctmdp, model.goal_mask, t).value(
                    model.ctmdp.initial
                )
            )
        return values

    started = time.perf_counter()
    independent = independent_sweep()
    independent_seconds = time.perf_counter() - started

    def batched_sweep():
        engine = QueryEngine()
        batch = engine.run([Query(model=SPEC, t=t) for t in TIME_POINTS])
        assert engine.metrics.counter("models_built") == 1
        return batch.values()

    batched = benchmark.pedantic(batched_sweep, rounds=3, iterations=1)
    assert batched == independent  # bitwise, not approx

    benchmark.extra_info["independent_seconds"] = independent_seconds
    benchmark.extra_info["speedup"] = independent_seconds / benchmark.stats.stats.mean
    print(
        f"\n{len(TIME_POINTS)}-point sweep: independent {independent_seconds:.3f} s, "
        f"batched {benchmark.stats.stats.mean:.3f} s "
        f"({independent_seconds / benchmark.stats.stats.mean:.1f}x)"
    )
