"""Benchmark: the stochastic job-scheduling case study.

Not a figure of the paper, but the standard second workload for uniform-
CTMDP timed reachability: it stresses the solver differently from the
FTWC -- many choices per state (all running subsets) against the FTWC's
few, and a dense lattice state space against the FTWC's sparse one.
"""

import pytest

from repro.core.reachability import timed_reachability
from repro.models.job_scheduling import build_job_scheduling

CONFIGS = {
    "m6_k2": ([0.5, 0.8, 1.0, 1.5, 2.5, 4.0], 2),
    "m8_k3": ([0.4, 0.5, 0.8, 1.0, 1.5, 2.0, 2.5, 4.0], 3),
}


@pytest.mark.parametrize("config", CONFIGS)
def test_build(benchmark, config):
    rates, processors = CONFIGS[config]
    model = benchmark(build_job_scheduling, rates, processors)
    benchmark.extra_info["states"] = model.ctmdp.num_states
    benchmark.extra_info["choices"] = model.ctmdp.num_transitions


@pytest.mark.parametrize("config", CONFIGS)
def test_solve(benchmark, config):
    rates, processors = CONFIGS[config]
    model = build_job_scheduling(rates, processors)

    def solve():
        return timed_reachability(model.ctmdp, model.goal_mask, 3.0, epsilon=1e-6)

    result = benchmark(solve)
    assert 0.0 < result.value(model.ctmdp.initial) < 1.0
    benchmark.extra_info["iterations"] = result.iterations
    benchmark.extra_info["probability"] = result.value(model.ctmdp.initial)
