"""Fleet aggregation scrape latency.

Starts two telemetry servers with realistic metric stores (a small FTWC
batch each, so counters, gauges and certificate histograms are all
present), then times full aggregation cycles -- scraping both sources'
``/metrics?format=json`` + ``/healthz`` + ``/traces`` and rendering the
federated exposition.  One cycle must stay far below any sane scrape
interval, and the federated output must label every source.

Appends the measurements to the ``BENCH_http.json`` ledger under
``kind: "fleet-aggregation"`` so the series trends separately from the
plain single-server scrape numbers.

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_fleet.py``.
"""

import time
from pathlib import Path

import pytest

from _ledger import append_run
from repro.engine.plan import Query
from repro.engine.solver import QueryEngine
from repro.obs.fleet import FleetAggregator, FleetStore
from repro.obs.http import TelemetryServer

CYCLES = 25

#: Per-cycle budget: two loopback sources, three endpoints each, plus
#: rendering the federated exposition, on a loaded CI box.
CYCLE_BUDGET_SECONDS = 1.0


def _engine():
    engine = QueryEngine()
    batch = engine.run(
        [
            Query(
                model={"family": "ftwc", "n": 1},
                t=t,
                epsilon=1e-6,
                goal="no_premium",
                objective="max",
            )
            for t in (10.0, 50.0)
        ]
    )
    assert batch.num_failed == 0
    return engine


@pytest.fixture(scope="module")
def sources():
    engines = [_engine(), _engine()]
    servers = [
        TelemetryServer(engine.metrics, instance=f"bench-{index}")
        for index, engine in enumerate(engines)
    ]
    for server in servers:
        server.start()
    try:
        yield servers
    finally:
        for server in servers:
            server.stop()


def test_fleet_aggregation_latency(sources):
    fleet = FleetStore()
    aggregator = FleetAggregator(
        [(server.instance, server.url) for server in sources],
        store=fleet,
        timeout=5.0,
    )
    # Warm-up: sockets, handler import paths.
    assert aggregator.scrape_once(force=True) == len(sources)

    durations = []
    for _ in range(CYCLES):
        started = time.perf_counter()
        assert aggregator.scrape_once(force=True) == len(sources)
        text = fleet.exposition()
        durations.append(time.perf_counter() - started)
    assert 'repro_queries_total_total{instance="bench-0"} 2' in text
    assert 'repro_queries_total_total{instance="bench-1"} 2' in text
    assert 'repro_fleet_source_up{instance="bench-0"} 1' in text
    assert fleet.health()["status"] == "ok"

    durations.sort()
    p50 = durations[len(durations) // 2]
    p99 = durations[min(len(durations) - 1, int(len(durations) * 0.99))]
    assert p99 <= CYCLE_BUDGET_SECONDS, (
        f"fleet aggregation p99 cycle latency {p99 * 1e3:.2f} ms exceeds "
        f"budget {CYCLE_BUDGET_SECONDS * 1e3:.0f} ms"
    )

    out = Path(__file__).resolve().parent.parent / "BENCH_http.json"
    append_run(
        out,
        "http-metrics-scrape",
        {
            "kind": "fleet-aggregation",
            "sources": len(sources),
            "cycles": CYCLES,
            "federated_bytes": len(text.encode("utf-8")),
            "min_seconds": durations[0],
            "p50_seconds": p50,
            "p99_seconds": p99,
            "budget_seconds": CYCLE_BUDGET_SECONDS,
        },
    )
