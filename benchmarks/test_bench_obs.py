"""Overhead budget of the observability layer.

The tracing instrumentation sits inside the hottest loop of the library
(the backward iteration of Algorithm 1), so its *disabled* cost must be
negligible.  This module measures an instrumented Table-1-sized solve
(FTWC N=4, t=100 h: ~2000 states, ~300 sweeps) against a reference
reimplementation of the pre-instrumentation loop running on the same
prepared arrays, asserts the overhead stays within ~5%, and appends the
measurements to the ``BENCH_obs.json`` ledger in the repository root
(one entry per run, keyed by commit and timestamp; see ``_ledger``).

Run with ``PYTHONPATH=src python -m pytest benchmarks/test_bench_obs.py``.
"""

import time
from pathlib import Path

import numpy as np
import pytest

from _ledger import append_run

from repro.core.reachability import PreparedTimedReachability
from repro.core.segments import segment_reduce
from repro.models.ftwc_direct import build_ctmdp
from repro.numerics.foxglynn import fox_glynn
from repro.obs import current_tracer, tracing

N = 4
T = 100.0
EPSILON = 1e-6
REPEATS = 5

#: Multiplicative budget for the disabled-tracer overhead, plus a small
#: absolute allowance for scheduler jitter on a CI box.
RELATIVE_BUDGET = 1.05
ABSOLUTE_SLACK = 2e-3


def _reference_solve(prepared: PreparedTimedReachability, t: float) -> np.ndarray:
    """The pre-instrumentation backward loop, byte-for-byte the same
    arithmetic as ``PreparedTimedReachability.solve`` without any
    tracing hooks -- the baseline the overhead is measured against."""
    fg = fox_glynn(prepared.rate * t, EPSILON)
    psi = fg.probabilities()
    segments = prepared.segments
    prob = prepared.prob
    prob_to_goal = prepared.prob_to_goal
    goal_idx = prepared.goal_idx
    q = np.zeros(prepared.num_states)
    for i in range(fg.right, 0, -1):
        psi_i = psi[i - fg.left] if i >= fg.left else 0.0
        transition_values = psi_i * prob_to_goal + prob @ q
        new_q = np.zeros(prepared.num_states)
        new_q[segments.nonempty] = segment_reduce(transition_values, segments, "max")
        new_q[goal_idx] = psi_i + q[goal_idx]
        q = new_q
    values = q.copy()
    values[goal_idx] = 1.0
    np.clip(values, 0.0, 1.0, out=values)
    return values


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    """Minimum wall time over ``repeats`` runs (robust against noise)."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


@pytest.fixture(scope="module")
def prepared():
    model = build_ctmdp(N)
    return PreparedTimedReachability(model.ctmdp, model.goal_mask)


def test_disabled_tracer_overhead_within_budget(prepared):
    """The headline budget: with no tracer active, the instrumented
    solve must stay within ~5% of the uninstrumented loop."""
    assert current_tracer() is None

    # Warm-up: JIT-free Python, but caches, allocator pools etc. settle.
    _reference_solve(prepared, T)
    prepared.solve(T, epsilon=EPSILON)

    ref_seconds, ref_values = _best_of(lambda: _reference_solve(prepared, T))
    solve_seconds, result = _best_of(lambda: prepared.solve(T, epsilon=EPSILON))

    # Instrumentation must not change the arithmetic.
    np.testing.assert_array_equal(result.values, ref_values)

    budget = ref_seconds * RELATIVE_BUDGET + ABSOLUTE_SLACK
    assert solve_seconds <= budget, (
        f"instrumented solve {solve_seconds * 1e3:.2f} ms exceeds budget "
        f"{budget * 1e3:.2f} ms (reference {ref_seconds * 1e3:.2f} ms)"
    )

    _record_datapoints(prepared, ref_seconds, solve_seconds, result.iterations)


def test_enabled_tracer_still_usable(prepared):
    """Tracing on: the per-step duration collection costs something,
    but the solve must stay within a small factor -- profiling must not
    distort the workload it measures beyond recognition."""
    ref_seconds, _ = _best_of(lambda: _reference_solve(prepared, T), repeats=3)

    def traced():
        with tracing():
            return prepared.solve(T, epsilon=EPSILON)

    traced_seconds, _ = _best_of(traced, repeats=3)
    assert traced_seconds <= ref_seconds * 2.0 + ABSOLUTE_SLACK


def _record_datapoints(prepared, ref_seconds, solve_seconds, iterations):
    out = Path(__file__).resolve().parent.parent / "BENCH_obs.json"
    payload = {
        "workload": {
            "family": "ftwc",
            "n": N,
            "t_hours": T,
            "epsilon": EPSILON,
            "states": prepared.num_states,
            "transitions": prepared.ctmdp.num_transitions,
            "iterations": int(iterations),
        },
        "reference_seconds": ref_seconds,
        "instrumented_disabled_seconds": solve_seconds,
        "overhead_ratio": solve_seconds / ref_seconds if ref_seconds > 0 else None,
        "budget": {"relative": RELATIVE_BUDGET, "absolute_slack": ABSOLUTE_SLACK},
        "repeats": REPEATS,
        "timing": "min over repeats",
    }
    append_run(out, "obs-overhead", payload)
