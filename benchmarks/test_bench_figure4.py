"""Benchmark: Figure 4 -- worst-case CTMDP versus CTMC probabilities.

Regenerates both panels of Figure 4 (the paper plots N=4 and N=128; the
default large panel here is N=16 to keep the run in minutes -- the
full-size panel is available via ``repro figure4 --n 128``).  The series
the paper reports are printed via ``--benchmark-only -s`` and the
paper's qualitative claims are asserted:

* the CTMC of [13] *overestimates* the worst-case CTMDP probability at
  every positive time bound (the artificial high-rate races), and
* the gap between inf and sup over schedulers is genuine but small for
  this model (the repair-unit assignment matters little when failures
  are rare).
"""

import pytest

from repro.analysis.experiments import figure4_curves
from repro.analysis.tables import render_figure4

TIME_POINTS = tuple(float(t) for t in range(0, 501, 100))


@pytest.mark.parametrize("n", (4, 16))
def test_figure4_panel(benchmark, n):
    def panel():
        return figure4_curves(n, TIME_POINTS, gamma=10.0)

    curves = benchmark.pedantic(panel, rounds=1, iterations=1)
    print()
    print(render_figure4(curves))
    positive = curves.time_points > 0.0
    assert (curves.ctmc[positive] > curves.ctmdp_max[positive]).all()
    assert (curves.ctmdp_min[positive] <= curves.ctmdp_max[positive] + 1e-12).all()
    benchmark.extra_info["sup_at_500h"] = float(curves.ctmdp_max[-1])
    benchmark.extra_info["ctmc_at_500h"] = float(curves.ctmc[-1])
    benchmark.extra_info["overestimation_at_500h"] = float(
        curves.ctmc[-1] / curves.ctmdp_max[-1]
    )
