"""Append-style benchmark ledgers.

The ``BENCH_*.json`` files in the repository root are growth ledgers:
every benchmark run appends one entry keyed by the git commit and a UTC
timestamp, so regressions are visible as a series rather than a single
overwritten snapshot.  :func:`append_run` is the single writer -- it
converts a legacy single-run document (the pre-ledger format) into the
first entry and bounds the series length so the files stay reviewable.
"""

import json
import subprocess
from datetime import datetime, timezone
from pathlib import Path
from typing import Any


def git_sha(cwd: Path) -> str:
    """The current short commit id, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else "unknown"


def append_run(
    path: Path, benchmark: str, payload: dict[str, Any], keep: int = 50
) -> dict[str, Any]:
    """Append one run to the ledger at ``path`` and return the entry.

    ``payload`` is the benchmark's measurement record; the ledger stamps
    it with the commit id and an ISO-8601 UTC timestamp.  The stamps are
    authoritative: ``commit``/``recorded_at`` keys in ``payload`` are
    ignored, so every appended entry carries real provenance and
    ``repro bench trend`` can order runs chronologically.  A pre-ledger
    single-run document found at ``path`` becomes the first entry (with
    unknown provenance).  Only the last ``keep`` runs are retained.
    """
    path = Path(path)
    runs: list[dict[str, Any]] = []
    if path.exists():
        try:
            document = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            document = None
        if isinstance(document, dict):
            if isinstance(document.get("runs"), list):
                runs = [run for run in document["runs"] if isinstance(run, dict)]
            else:
                legacy = {
                    key: value for key, value in document.items() if key != "benchmark"
                }
                legacy.setdefault("commit", "unknown")
                legacy.setdefault("recorded_at", None)
                runs = [legacy]
    entry: dict[str, Any] = {
        "commit": git_sha(path.parent),
        "recorded_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }
    entry.update(
        {k: v for k, v in payload.items() if k not in ("commit", "recorded_at")}
    )
    runs.append(entry)
    runs = runs[-keep:]
    document = {"benchmark": benchmark, "runs": runs}
    path.write_text(json.dumps(document, indent=1) + "\n", encoding="utf-8")
    return entry
